"""Columnar bus engine: vectorised schedules and arbitration replay.

The event-driven :class:`~repro.can.bus.BusSimulator` is the *reference*
engine: per-frame generator yields, a heapq pop per frame, a CRC-15 /
bit-stuffing pass per frame, and a :class:`~repro.can.bus.BusRecord`
object per frame.  That is faithful but slow — once inference is
compiled (PR 4), campaign and gateway runs are dominated by the bus.

This module is the *compute* engine for the same physics:

* :class:`ScheduleArray` — a columnar frame schedule (release times,
  identifiers, payload bytes, labels, source names as numpy arrays).
  Traffic sources emit one via ``frames_array(until)``; sources that
  only implement the scalar iterator are materialised by
  :func:`schedule_from_frames` (the exotic fallback).
* :func:`standard_wire_bits` — exact CAN 2.0A wire lengths (CRC-15 +
  bit stuffing + trailer) for whole schedules at once, collapsing
  duplicate ``(id, payload)`` rows first, so a DoS flood costs one CRC
  instead of tens of thousands.
* :func:`simulate_arbitration` — arbitration replay as a columnar
  sweep.  Uncontended stretches (each frame completes before the next
  release) are resolved in vectorised runs; only genuinely contended
  busy periods fall back to a tight heap loop over primitive tuples.

**Bit-exactness.**  The kernel reproduces ``BusSimulator.run`` exactly:
same winners, same timestamps (the same IEEE operations in the same
order, not merely close), same capture-horizon drop semantics.  The
CI equivalence sweep (``tests/test_fastbus.py``) holds both engines to
that contract across mixed periodic/attacker topologies, bitrates and
horizon clipping.
"""

from __future__ import annotations

import heapq
from collections import deque
import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.can.frame import _CRC15_POLY, _TRAILER_BITS
from repro.errors import CANError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (log -> bus -> node)
    from repro.can.bus import BusRecord
    from repro.can.faults import WireFaultModel
    from repro.can.log import CaptureArray
    from repro.can.node import ScheduledFrame, TrafficSource

__all__ = [
    "ArbitrationResult",
    "ScheduleArray",
    "build_schedule",
    "release_grid",
    "schedule_columns",
    "schedule_from_frames",
    "simulate_arbitration",
    "standard_wire_bits",
]

#: Payload slots per frame (classic CAN maximum), kept in sync with
#: :data:`repro.can.log.MAX_PAYLOAD_BYTES` without importing it here.
_PAYLOAD_SLOTS = 8

#: Standard data frame header bits before the payload: SOF(1) + ID(11)
#: + RTR/IDE/r0(3) + DLC(4).
_HEADER_BITS = 19
_CRC_BITS = 15

#: Sentinel in :attr:`ScheduleArray.wire_bits`: compute vectorised.
WIRE_BITS_UNSET = -1


# ---------------------------------------------------------------------------
# Columnar schedules
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleArray:
    """A columnar frame schedule: what a traffic source will release.

    One row per scheduled frame.  ``payloads`` rows are zero-padded to
    eight bytes (``dlcs`` keeps the true lengths); ``labels`` uses the
    capture convention (1 = attack/tampered ``"T"``, 0 = regular
    ``"R"``); ``sources`` carries the emitting node's name for phase
    attribution.  ``wire_bits`` is the exact stuffed wire length
    including the trailer, or :data:`WIRE_BITS_UNSET` for standard data
    frames whose length the kernel computes vectorised (the scalar
    fallback pre-fills it for extended/RTR frames, which the columnar
    length kernel does not model).
    """

    release_times: np.ndarray  #: (N,) float64 release instants
    can_ids: np.ndarray  #: (N,) int64 identifiers
    dlcs: np.ndarray  #: (N,) int64 true payload lengths
    payloads: np.ndarray  #: (N, 8) uint8 zero-padded payload bytes
    labels: np.ndarray  #: (N,) int64, 1 for attack ("T") frames
    sources: np.ndarray  #: (N,) unicode source names
    wire_bits: np.ndarray  #: (N,) int64 exact wire bits, -1 = compute

    def __post_init__(self) -> None:
        n = self.release_times.shape[0]
        # reprolint: disable=hot-path-purity -- iterates field names for shape validation, not frames
        for name in ("can_ids", "dlcs", "labels", "sources", "wire_bits"):
            if getattr(self, name).shape != (n,):
                raise CANError(f"ScheduleArray field {name} must have shape ({n},)")
        if self.payloads.shape != (n, _PAYLOAD_SLOTS):
            raise CANError(
                f"ScheduleArray payloads must have shape ({n}, {_PAYLOAD_SLOTS}), "
                f"got {self.payloads.shape}"
            )
        if self.payloads.dtype != np.uint8:
            raise CANError(f"ScheduleArray payloads must be uint8, got {self.payloads.dtype}")

    def __len__(self) -> int:
        return int(self.release_times.shape[0])

    @classmethod
    def empty(cls) -> "ScheduleArray":
        return cls(
            release_times=np.zeros(0, dtype=np.float64),
            can_ids=np.zeros(0, dtype=np.int64),
            dlcs=np.zeros(0, dtype=np.int64),
            payloads=np.zeros((0, _PAYLOAD_SLOTS), dtype=np.uint8),
            labels=np.zeros(0, dtype=np.int64),
            sources=np.zeros(0, dtype="<U1"),
            wire_bits=np.zeros(0, dtype=np.int64),
        )

    def take(self, indices: np.ndarray) -> "ScheduleArray":
        """Reorder / subset all columns with one index array."""
        return ScheduleArray(
            release_times=self.release_times[indices],
            can_ids=self.can_ids[indices],
            dlcs=self.dlcs[indices],
            payloads=self.payloads[indices],
            labels=self.labels[indices],
            sources=self.sources[indices],
            wire_bits=self.wire_bits[indices],
        )

    @classmethod
    def concatenate(cls, parts: Sequence["ScheduleArray"]) -> "ScheduleArray":
        """Stack schedules (source attach order — ties stay stable)."""
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls(
            release_times=np.concatenate([p.release_times for p in parts]),
            can_ids=np.concatenate([p.can_ids for p in parts]),
            dlcs=np.concatenate([p.dlcs for p in parts]),
            payloads=np.concatenate([p.payloads for p in parts], axis=0),
            labels=np.concatenate([p.labels for p in parts]),
            sources=np.concatenate([p.sources for p in parts]),
            wire_bits=np.concatenate([p.wire_bits for p in parts]),
        )

    def sorted_by_release(self) -> "ScheduleArray":
        """Stable sort by release time (= the event engine's merge order)."""
        return self.take(np.argsort(self.release_times, kind="stable"))

    def resolved_wire_bits(self) -> np.ndarray:
        """Exact wire bits per frame, computing unset rows vectorised."""
        unset = self.wire_bits == WIRE_BITS_UNSET
        if not np.any(unset):
            return self.wire_bits
        bits = self.wire_bits.copy()
        bits[unset] = standard_wire_bits(
            self.can_ids[unset], self.dlcs[unset], self.payloads[unset]
        )
        return bits

    def scheduled_frames(self) -> "Iterable[ScheduledFrame]":
        """Materialise the scalar :class:`ScheduledFrame` stream.

        This is how the scalar ``frames()`` iterators are implemented on
        top of the columnar emitters, so both engines consume one draw
        path by construction.
        """
        from repro.can.frame import CANFrame
        from repro.can.node import ScheduledFrame

        releases = self.release_times.tolist()
        ids = self.can_ids.tolist()
        dlcs = self.dlcs.tolist()
        labels = self.labels.tolist()
        sources = self.sources.tolist()
        payload_bytes = self.payloads.tobytes()
        for k in range(len(releases)):
            data = payload_bytes[k * _PAYLOAD_SLOTS : k * _PAYLOAD_SLOTS + dlcs[k]]
            yield ScheduledFrame(
                releases[k],
                CANFrame(ids[k], data),
                "T" if labels[k] else "R",
                sources[k],
            )


def schedule_columns(
    release_times: np.ndarray,
    can_ids: int | np.ndarray,
    payloads: np.ndarray,
    label: int,
    source: str,
    dlcs: int | np.ndarray | None = None,
    wire_bits: np.ndarray | None = None,
) -> ScheduleArray:
    """Assemble a :class:`ScheduleArray` from emitter columns.

    ``payloads`` is ``(N, dlc)`` uint8 (uniform length, padded here) or
    already ``(N, 8)`` with explicit per-frame ``dlcs``.  ``can_ids``
    and ``dlcs`` broadcast from scalars; ``label``/``source`` apply to
    every row (one emitter = one label and one node name).
    """
    release_times = np.asarray(release_times, dtype=np.float64)
    n = release_times.shape[0]
    payloads = np.asarray(payloads, dtype=np.uint8)
    if payloads.ndim != 2 or payloads.shape[0] != n or payloads.shape[1] > _PAYLOAD_SLOTS:
        raise CANError(f"payloads must be (N, <={_PAYLOAD_SLOTS}) uint8, got {payloads.shape}")
    width = payloads.shape[1]
    if width < _PAYLOAD_SLOTS:
        padded = np.zeros((n, _PAYLOAD_SLOTS), dtype=np.uint8)
        padded[:, :width] = payloads
        payloads = padded
    if dlcs is None:
        dlcs = width
    return ScheduleArray(
        release_times=release_times,
        can_ids=np.broadcast_to(np.asarray(can_ids, dtype=np.int64), (n,)).copy()
        if np.ndim(can_ids) == 0
        else np.asarray(can_ids, dtype=np.int64),
        dlcs=np.broadcast_to(np.asarray(dlcs, dtype=np.int64), (n,)).copy()
        if np.ndim(dlcs) == 0
        else np.asarray(dlcs, dtype=np.int64),
        payloads=payloads,
        labels=np.full(n, int(label), dtype=np.int64),
        sources=np.full(n, source),  # reprolint: disable=dtype-discipline -- unicode width inferred from the source name
        wire_bits=np.full(n, WIRE_BITS_UNSET, dtype=np.int64)
        if wire_bits is None
        else np.asarray(wire_bits, dtype=np.int64),
    )


def release_grid(start: float, stop: float, step: float) -> np.ndarray:
    """Releases ``start, start + step, ...`` strictly below ``stop``.

    Uses the closed-form grid (``start + k * step``) rather than
    repeated accumulation; the trailing mask keeps the float boundary
    exact (never a release at or past ``stop``).
    """
    if step <= 0:
        raise CANError(f"grid step must be positive, got {step}")
    if stop <= start:
        return np.zeros(0, dtype=np.float64)
    count = max(int(np.ceil((stop - start) / step)), 0)
    while start + count * step < stop:  # float-rounding guard
        count += 1
    releases = start + step * np.arange(count, dtype=np.float64)
    return releases[releases < stop]


def schedule_from_frames(frames: "Iterable[ScheduledFrame]") -> ScheduleArray:
    """Materialise a scalar frame iterator (the exotic-source fallback).

    Extended/RTR frames get their exact wire length computed here (the
    vectorised length kernel models standard data frames only); their
    columnar capture rows carry identifier, DLC and payload exactly as
    :func:`repro.can.log.records_from_bus` would record them.
    """
    releases: list[float] = []
    ids: list[int] = []
    dlcs: list[int] = []
    chunks: list[bytes] = []
    labels: list[int] = []
    sources: list[str] = []
    wire: list[int] = []
    for scheduled in frames:
        frame = scheduled.frame
        releases.append(scheduled.release_time)
        ids.append(frame.can_id)
        dlcs.append(frame.dlc)
        chunks.append(frame.data + bytes(_PAYLOAD_SLOTS - frame.dlc))
        labels.append(1 if scheduled.label == "T" else 0)
        sources.append(scheduled.source)
        wire.append(
            frame.bit_length() if (frame.extended or frame.rtr) else WIRE_BITS_UNSET
        )
    n = len(releases)
    if n == 0:
        return ScheduleArray.empty()
    return ScheduleArray(
        release_times=np.array(releases, dtype=np.float64),
        can_ids=np.array(ids, dtype=np.int64),
        dlcs=np.array(dlcs, dtype=np.int64),
        payloads=np.frombuffer(b"".join(chunks), dtype=np.uint8).reshape(
            n, _PAYLOAD_SLOTS
        ).copy(),
        labels=np.array(labels, dtype=np.int64),
        sources=np.array(sources),
        wire_bits=np.array(wire, dtype=np.int64),
    )


def source_schedule(source: "TrafficSource", until: float) -> ScheduleArray:
    """One source's schedule in its own emission order (no re-sort).

    Columnar sources emit directly; scalar-only sources are
    materialised.  Wrappers use this to transform a victim's stream
    while preserving its yield order, exactly as the scalar wrappers
    iterate it.
    """
    emitter = getattr(source, "frames_array", None)
    if emitter is not None:
        return emitter(until)
    return schedule_from_frames(source.frames(until))


def build_schedule(sources: "Sequence[TrafficSource]", until: float) -> ScheduleArray:
    """Merge every source's schedule, sorted as the event engine sorts.

    Sources exposing ``frames_array`` emit columns directly; anything
    else is materialised from its scalar iterator.  Concatenation in
    attach order followed by a stable release-time sort reproduces the
    reference engine's merge exactly (ties keep attach order).
    """
    parts = [source_schedule(source, until) for source in sources]
    return ScheduleArray.concatenate([part for part in parts if len(part)]).sorted_by_release()


# ---------------------------------------------------------------------------
# Vectorised wire lengths (CRC-15 + bit stuffing over whole schedules)
# ---------------------------------------------------------------------------


def _wire_bits_for_rows(rows: np.ndarray) -> np.ndarray:
    """Exact wire bits for unique packed rows ``[id_hi, id_lo, dlc, 8 bytes]``."""
    out = np.zeros(rows.shape[0], dtype=np.int64)
    dlcs = rows[:, 2].astype(np.int64)
    # reprolint: disable=hot-path-purity -- loops over the <=9 distinct DLC widths, not frames
    for dlc in np.unique(dlcs):
        group = np.flatnonzero(dlcs == dlc)
        sub = rows[group]
        m = sub.shape[0]
        width = int(dlc)
        body_len = _HEADER_BITS + 8 * width
        bits = np.zeros((m, body_len + _CRC_BITS), dtype=np.uint8)
        ids = (sub[:, 0].astype(np.int64) << 8) | sub[:, 1].astype(np.int64)
        bits[:, 1:12] = (
            (ids[:, None] >> np.arange(10, -1, -1, dtype=np.int64)) & 1
        ).astype(np.uint8)
        # RTR/IDE/r0 are dominant zeros for standard data frames.
        bits[:, 15:19] = (
            (width >> np.arange(3, -1, -1, dtype=np.int64)) & 1
        ).astype(np.uint8)
        if width:
            bits[:, _HEADER_BITS:body_len] = np.unpackbits(
                sub[:, 3 : 3 + width], axis=1
            )
        # CRC-15 over the body, one numpy pass per bit position —
        # identical recurrence to :func:`repro.can.frame.crc15`.
        crc = np.zeros(m, dtype=np.int64)
        # reprolint: disable=hot-path-purity -- per-bit-column CRC recurrence, O(wire bits) not O(frames)
        for column in range(body_len):
            feedback = ((crc >> 14) & 1) ^ bits[:, column]
            crc = ((crc << 1) & 0x7FFF) ^ (feedback * _CRC15_POLY)
        bits[:, body_len:] = (
            (crc[:, None] >> np.arange(14, -1, -1, dtype=np.int64)) & 1
        ).astype(np.uint8)
        # Bit stuffing over SOF..CRC: run-state per row, one pass per
        # column — identical semantics to :func:`stuff_bits` (a stuff
        # bit resets the run and counts toward the next one).
        run_value = np.full(m, -1, dtype=np.int16)
        run_length = np.zeros(m, dtype=np.int64)
        stuffed = np.zeros(m, dtype=np.int64)
        # reprolint: disable=hot-path-purity -- per-bit-column stuffing scan, O(wire bits) not O(frames)
        for column in range(body_len + _CRC_BITS):
            bit = bits[:, column].astype(np.int16)
            run_length = np.where(bit == run_value, run_length + 1, 1)
            run_value = bit
            hit = run_length == 5
            stuffed += hit
            run_value = np.where(hit, 1 - bit, run_value)
            run_length = np.where(hit, 1, run_length)
        out[group] = body_len + _CRC_BITS + stuffed + _TRAILER_BITS
    return out


def standard_wire_bits(
    can_ids: np.ndarray, dlcs: np.ndarray, payloads: np.ndarray
) -> np.ndarray:
    """Stuffed wire bits (incl. trailer) of standard data frames, batched.

    Bit-exact against ``CANFrame(id, data).bit_length()`` for every
    standard (11-bit, non-RTR) data frame.  Duplicate ``(id, dlc,
    payload)`` rows are collapsed first — a DoS flood of identical
    frames costs one CRC/stuffing pass, not one per frame.
    """
    can_ids = np.asarray(can_ids, dtype=np.int64)
    dlcs = np.asarray(dlcs, dtype=np.int64)
    payloads = np.asarray(payloads, dtype=np.uint8)
    n = can_ids.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any((can_ids < 0) | (can_ids > 0x7FF)):
        raise CANError("standard_wire_bits models 11-bit identifiers only")
    width = 3 + _PAYLOAD_SLOTS
    rows = np.zeros((n, width), dtype=np.uint8)
    rows[:, 0] = can_ids >> 8
    rows[:, 1] = can_ids & 0xFF
    rows[:, 2] = dlcs
    rows[:, 3:] = payloads
    # Zero bytes beyond the DLC so padding never perturbs uniqueness.
    rows[:, 3:][np.arange(_PAYLOAD_SLOTS, dtype=np.int64) >= dlcs[:, None]] = 0
    # Dedup via a fixed-width bytes view: unique on |S11 sorts with
    # memcmp, an order of magnitude faster than axis-0 unique's
    # void-compare path on flood-scale schedules.
    keys = np.ascontiguousarray(rows).view(f"|S{width}").ravel()
    unique_keys, first_index, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    return _wire_bits_for_rows(rows[first_index])[inverse]


# ---------------------------------------------------------------------------
# Arbitration replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArbitrationResult:
    """Everything one simulated capture window produced, in columns.

    ``capture`` timestamps are reception-complete times (what the event
    engine's :class:`~repro.can.bus.BusRecord` records); ``queued_at``
    and ``started_at`` carry the release and arbitration-win instants,
    ``sources`` the emitting node per surviving frame, ``wire_bits``
    the exact occupancy used for bus-load accounting, and
    ``schedule_indices`` each survivor's row in the merged schedule.

    Faulted runs (``faults=`` on :func:`simulate_arbitration`) add the
    wire-fault attribution columns: ``corrupted`` flags records that
    are corrupted attempts (one capture row per attempt — schedule rows
    may repeat), ``retries`` counts a record's earlier attempts, and
    ``bus_off`` marks the attempt that silenced its sender.  They stay
    ``None`` on the clean path (use the ``*_mask``/``retry_counts``
    accessors for a uniform view).
    """

    capture: "CaptureArray"
    sources: np.ndarray
    queued_at: np.ndarray
    started_at: np.ndarray
    wire_bits: np.ndarray
    schedule_indices: np.ndarray
    bitrate: float
    duration: float
    corrupted: np.ndarray | None = None
    retries: np.ndarray | None = None
    bus_off: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.capture)

    @property
    def corrupted_mask(self) -> np.ndarray:
        """Per-record corrupted flags (all-False on the clean path)."""
        if self.corrupted is not None:
            return self.corrupted
        return np.zeros(len(self), dtype=bool)

    @property
    def retry_counts(self) -> np.ndarray:
        """Per-record prior-attempt counts (all-zero on the clean path)."""
        if self.retries is not None:
            return self.retries
        return np.zeros(len(self), dtype=np.int64)

    @property
    def bus_off_mask(self) -> np.ndarray:
        """Per-record bus-off flags (all-False on the clean path)."""
        if self.bus_off is not None:
            return self.bus_off
        return np.zeros(len(self), dtype=bool)

    def bus_load(self) -> float:
        """Fraction of wire time occupied by the surviving frames."""
        return min(float(self.wire_bits.sum()) / (self.bitrate * self.duration), 1.0)

    @property
    def queueing_delays(self) -> np.ndarray:
        """Per-frame arbitration wait (started - queued)."""
        return self.started_at - self.queued_at

    def to_bus_records(self) -> "list[BusRecord]":
        """Materialise event-engine records (A/B comparisons, debugging)."""
        from repro.can.bus import BusRecord
        from repro.can.frame import CANFrame

        capture = self.capture
        corrupted = self.corrupted_mask
        retries = self.retry_counts
        bus_off = self.bus_off_mask
        records = []
        for k in range(len(capture)):
            dlc = int(capture.dlcs[k])
            records.append(
                BusRecord(
                    timestamp=float(capture.timestamps[k]),
                    frame=CANFrame(int(capture.can_ids[k]), capture.payloads[k, :dlc].tobytes()),
                    label="T" if capture.labels[k] else "R",
                    source=str(self.sources[k]),
                    queued_at=float(self.queued_at[k]),
                    started_at=float(self.started_at[k]),
                    corrupted=bool(corrupted[k]),
                    retries=int(retries[k]),
                    bus_off=bool(bus_off[k]),
                )
            )
        return records


def simulate_arbitration(
    schedule: ScheduleArray,
    bitrate: float,
    duration: float,
    faults: "WireFaultModel | None" = None,
) -> ArbitrationResult:
    """Replay CSMA/CR priority arbitration over a merged schedule.

    ``schedule`` must be release-sorted (ties in the attach/emission
    order the event engine uses — :func:`build_schedule` guarantees
    both).  The sweep partitions the timeline with a precomputed
    *independence chain* (``release[k+1] >= release[k] + duration[k]``,
    the same single IEEE comparison the event loop would make): maximal
    uncontended runs are emitted vectorised, and only genuinely
    contended busy periods run the heap loop — over primitive tuples,
    with every float operation identical to ``BusSimulator.run``, so
    winners, timestamps and horizon drops are bit-exact, not merely
    close.

    ``faults`` enables the wire-fault layer (:mod:`repro.can.faults`),
    bit-exact against ``BusSimulator.run(..., faults=)``: the shared
    :class:`~repro.can.faults.FaultPlan` decides corruptions before the
    sweep, clean uncontended stretches stay vectorised, and faulted or
    silenced rows drop to the heap loop.
    """
    if duration <= 0:
        raise CANError(f"duration must be positive, got {duration}")
    if bitrate <= 0:
        raise CANError(f"bitrate must be positive, got {bitrate}")
    if faults is not None:
        return _simulate_arbitration_faulted(schedule, bitrate, duration, faults)
    from repro.can.log import CaptureArray

    n = len(schedule)
    releases = schedule.release_times
    if n == 0:
        return ArbitrationResult(
            capture=CaptureArray(
                timestamps=np.zeros(0, dtype=np.float64),
                can_ids=np.zeros(0, dtype=np.int64),
                dlcs=np.zeros(0, dtype=np.int64),
                payloads=np.zeros((0, _PAYLOAD_SLOTS), dtype=np.uint8),
                labels=np.zeros(0, dtype=np.int64),
            ),
            sources=schedule.sources,
            queued_at=np.zeros(0, dtype=np.float64),
            started_at=np.zeros(0, dtype=np.float64),
            wire_bits=np.zeros(0, dtype=np.int64),
            schedule_indices=np.zeros(0, dtype=np.int64),
            bitrate=float(bitrate),
            duration=float(duration),
        )
    if np.any(np.diff(releases) < 0):
        raise CANError("simulate_arbitration needs a release-sorted schedule")

    wire_bits = schedule.resolved_wire_bits()
    durations = wire_bits / float(bitrate)
    #: completion time if frame k transmits the instant it is released
    solo_ends = releases + durations
    # chain[k]: frame k+1 releases at or after frame k's solo completion
    # — the exact comparison deciding whether the bus goes idle between
    # them.  chain[k] true for a frame that starts fresh means it is a
    # singleton busy period, resolvable without arbitration.
    chain = np.empty(n, dtype=bool)
    if n > 1:
        chain[:-1] = releases[1:] >= solo_ends[:-1]
    chain[-1] = True
    contended = np.flatnonzero(~chain)

    out_index = np.empty(n, dtype=np.int64)
    out_start = np.empty(n, dtype=np.float64)
    out_end = np.empty(n, dtype=np.float64)
    count = 0

    # Primitive views for the scalar busy-period loop (built lazily).
    releases_list: list[float] | None = None
    durations_list: list[float] | None = None
    ids_list: list[int] | None = None
    chain_list: list[bool] | None = None

    i = 0
    free = 0.0
    while i < n:
        if releases[i] >= free and chain[i]:
            # Vectorised run of singleton busy periods: every frame up
            # to the next contention point starts at its release and
            # completes solo (start = release, end = release + duration
            # — the identical operations the event loop performs).
            position = np.searchsorted(contended, i)
            j = int(contended[position]) if position < contended.size else n
            run = j - i
            out_index[count : count + run] = np.arange(i, j, dtype=np.int64)
            out_start[count : count + run] = releases[i:j]
            out_end[count : count + run] = solo_ends[i:j]
            count += run
            free = float(solo_ends[j - 1])
            i = j
            continue
        # Contended stretch: exact event-loop replay over primitives.
        if releases_list is None:
            releases_list = releases.tolist()
            durations_list = durations.tolist()
            ids_list = schedule.can_ids.tolist()
            chain_list = chain.tolist()
        assert durations_list is not None
        assert ids_list is not None
        assert chain_list is not None
        pending: list[tuple[int, int]] = []
        run_queue: deque[int] = deque()
        block_index: list[int] = []
        block_start: list[float] = []
        block_end: list[float] = []
        while True:
            if not pending:
                if i >= n or (releases_list[i] >= free and chain_list[i]):
                    break  # bus idle again and the next frame is a singleton
                next_release = releases_list[i]
                candidate = next_release if next_release > free else free
            else:
                root_release = releases_list[pending[0][1]]
                candidate = root_release if root_release > free else free
            # Everyone released by the idle point joins arbitration;
            # (can_id, index) orders exactly like the event engine's
            # (can_id, release_time, sequence) because admission is in
            # release-sorted order.
            while i < n and releases_list[i] <= candidate:
                heapq.heappush(pending, (ids_list[i], i))
                i += 1
            m, winner = heapq.heappop(pending)
            release = releases_list[winner]
            start = release if release > free else free
            end = start + durations_list[winner]
            block_index.append(winner)
            block_start.append(start)
            block_end.append(end)
            free = end
            # Batched same-priority run: while the winning identifier
            # keeps winning, serve its frames back-to-back without the
            # per-frame heap churn and candidate recomputation.  Two
            # invariants make this bit-exact with the plain loop above:
            # every heap entry's release is <= free (so candidate would
            # equal free), and an admitted frame's start is therefore
            # exactly free.  Same-id frames already in the heap carry
            # smaller schedule indices than anything admitted here, so
            # popping them before the run queue preserves (id, index)
            # order.  Breaking out at any point leaves (emitted, heap,
            # i, free) in a state the plain loop reaches too.
            while True:
                if (
                    not run_queue
                    and (not pending or pending[0][0] > m)
                    and i < n
                    and ids_list[i] == m
                    and releases_list[i] <= free
                ):
                    # Contiguous stretch of schedule rows all carrying id
                    # m: resolve the saturated prefix in one vectorised
                    # slice.  np.add.accumulate is sequential, so the
                    # back-to-back completions are the identical IEEE
                    # additions the scalar loop would perform.
                    j = i + 1
                    while j < n and ids_list[j] == m:
                        j += 1
                    if j - i >= 8:
                        limit = releases_list[j] if j < n else float("inf")
                        ends = np.add.accumulate(
                            np.concatenate(
                                (np.array([free], dtype=np.float64), durations[i:j])
                            )
                        )[1:]
                        begins = np.concatenate(
                            (np.array([free], dtype=np.float64), ends[:-1])
                        )
                        # Serve while each frame is released by its start
                        # and nothing outside the run would join
                        # arbitration first.
                        ok = (releases[i:j] <= begins) & (begins < limit)
                        served = j - i if bool(ok.all()) else int(np.argmin(ok))
                        if served:
                            block_index.extend(range(i, i + served))
                            block_start.extend(begins[:served].tolist())
                            block_end.extend(ends[:served].tolist())
                            free = float(ends[served - 1])
                            i += served
                            continue
                while i < n and releases_list[i] <= free:
                    cid = ids_list[i]
                    if cid == m:
                        run_queue.append(i)
                    else:
                        heapq.heappush(pending, (cid, i))
                    i += 1
                if pending and pending[0][0] <= m:
                    if pending[0][0] < m:
                        break  # a higher-priority id preempts the run
                    _, nxt = heapq.heappop(pending)
                elif run_queue:
                    nxt = run_queue.popleft()
                else:
                    break  # nothing released that id m outranks
                block_index.append(nxt)
                block_start.append(free)
                end = free + durations_list[nxt]
                block_end.append(end)
                free = end
            while run_queue:  # unserved run frames rejoin arbitration
                heapq.heappush(pending, (m, run_queue.popleft()))
        emitted = len(block_index)
        out_index[count : count + emitted] = block_index
        out_start[count : count + emitted] = block_start
        out_end[count : count + emitted] = block_end
        count += emitted

    # Horizon drop: completions are non-decreasing in service order, so
    # the event engine's break at the first over-horizon frame equals a
    # prefix cut here — frames in flight at the horizon never complete.
    kept = int(np.searchsorted(out_end[:count], duration, side="right"))
    survivors = out_index[:kept]
    capture = CaptureArray(
        timestamps=out_end[:kept].copy(),
        can_ids=schedule.can_ids[survivors],
        dlcs=schedule.dlcs[survivors],
        payloads=schedule.payloads[survivors],
        labels=schedule.labels[survivors],
    )
    return ArbitrationResult(
        capture=capture,
        sources=schedule.sources[survivors],
        queued_at=schedule.release_times[survivors],
        started_at=out_start[:kept].copy(),
        wire_bits=wire_bits[survivors],
        schedule_indices=survivors.copy(),
        bitrate=float(bitrate),
        duration=float(duration),
    )


def _simulate_arbitration_faulted(
    schedule: ScheduleArray,
    bitrate: float,
    duration: float,
    faults: "WireFaultModel",
) -> ArbitrationResult:
    """The faulted columnar sweep: error frames, retransmission, bus-off.

    The shared :class:`~repro.can.faults.FaultPlan` is resolved over the
    release-sorted columns first, so corruption draws and bus-off times
    are identical to the event engine's.  Rows the plan leaves alone
    keep the clean engine's vectorised singleton runs; rows with
    corrupted attempts — whose retransmissions re-enter arbitration at
    their error-frame completion — and rows of silenced nodes run the
    scalar heap loop, whose keys gain the entry release and a push
    sequence exactly as the faulted event loop's do.  Schedule rows may
    emit several records (one per attempt plus the final success);
    completion times stay non-decreasing, so the horizon prefix cut is
    unchanged.
    """
    from repro.can.log import CaptureArray

    n = len(schedule)
    releases = schedule.release_times
    if n == 0:
        empty = simulate_arbitration(schedule, bitrate, duration)
        return ArbitrationResult(
            capture=empty.capture,
            sources=empty.sources,
            queued_at=empty.queued_at,
            started_at=empty.started_at,
            wire_bits=empty.wire_bits,
            schedule_indices=empty.schedule_indices,
            bitrate=float(bitrate),
            duration=float(duration),
            corrupted=np.zeros(0, dtype=bool),
            retries=np.zeros(0, dtype=np.int64),
            bus_off=np.zeros(0, dtype=bool),
        )
    if np.any(np.diff(releases) < 0):
        raise CANError("simulate_arbitration needs a release-sorted schedule")

    wire_bits = schedule.resolved_wire_bits()
    durations = wire_bits / float(bitrate)
    plan = faults.plan(releases, schedule.can_ids, wire_bits, schedule.sources, bitrate)
    if plan.clean:
        # The model drew nothing over this window: the clean kernel is
        # bit-identical, so a zero-rate model costs only the plan.  The
        # resolved wire bits ride along so the length kernel runs once.
        return simulate_arbitration(
            dataclasses.replace(schedule, wire_bits=wire_bits), bitrate, duration
        )
    error_s = plan.error_s
    solo_ends = releases + durations
    chain = np.empty(n, dtype=bool)
    if n > 1:
        chain[:-1] = releases[1:] >= solo_ends[:-1]
    chain[-1] = True
    # Rows the plan touches (extra attempts, or silenced entirely) bound
    # the vectorised runs exactly like contention does.
    affected = (plan.attempts > 0) | ~plan.queued
    contended = np.flatnonzero(~chain | affected)

    capacity = n + plan.total_attempts
    out_index = np.empty(capacity, dtype=np.int64)
    out_start = np.empty(capacity, dtype=np.float64)
    out_end = np.empty(capacity, dtype=np.float64)
    out_corr = np.zeros(capacity, dtype=bool)
    out_retry = np.zeros(capacity, dtype=np.int64)
    out_boff = np.zeros(capacity, dtype=bool)
    count = 0

    # Primitive views for the scalar busy-period loop (built lazily).
    releases_list: list[float] | None = None
    durations_list: list[float] | None = None
    ids_list: list[int] | None = None
    chain_list: list[bool] | None = None
    affected_list: list[bool] | None = None
    queued_list: list[bool] | None = None
    left: list[int] | None = None
    attempts_total: list[int] | None = None
    transmit_list: list[bool] | None = None

    i = 0
    free = 0.0
    sequence = 0
    while i < n:
        if releases[i] >= free and chain[i] and not affected[i]:
            # Clean vectorised run, identical to the fault-free engine:
            # every row up to the next contended/affected index starts
            # at its release and completes solo.
            position = np.searchsorted(contended, i)
            j = int(contended[position]) if position < contended.size else n
            run = j - i
            out_index[count : count + run] = np.arange(i, j, dtype=np.int64)
            out_start[count : count + run] = releases[i:j]
            out_end[count : count + run] = solo_ends[i:j]
            count += run
            free = float(solo_ends[j - 1])
            i = j
            continue
        if releases_list is None:
            releases_list = releases.tolist()
            durations_list = durations.tolist()
            ids_list = schedule.can_ids.tolist()
            chain_list = chain.tolist()
            affected_list = affected.tolist()
            queued_list = plan.queued.tolist()
            left = plan.attempts.tolist()
            attempts_total = plan.attempts.tolist()
            transmit_list = plan.transmit.tolist()
        assert durations_list is not None
        assert ids_list is not None
        assert chain_list is not None
        assert affected_list is not None
        assert queued_list is not None
        assert left is not None
        assert attempts_total is not None
        assert transmit_list is not None
        # Faulted busy period: exact replay of the faulted event loop.
        pending: list[tuple[int, float, int, int]] = []
        block_index: list[int] = []
        block_start: list[float] = []
        block_end: list[float] = []
        block_corr: list[bool] = []
        block_retry: list[int] = []
        block_boff: list[bool] = []
        while True:
            if not pending:
                while i < n and not queued_list[i]:
                    i += 1  # bus-off node: the frame is never offered
                if i >= n or (
                    releases_list[i] >= free
                    and chain_list[i]
                    and not affected_list[i]
                ):
                    break  # bus idle again and the next row is a clean singleton
                next_release = releases_list[i]
                candidate = next_release if next_release > free else free
            else:
                root_release = pending[0][1]
                candidate = root_release if root_release > free else free
            while i < n and releases_list[i] <= candidate:
                if queued_list[i]:
                    heapq.heappush(
                        pending, (ids_list[i], releases_list[i], sequence, i)
                    )
                    sequence += 1
                i += 1
            if not pending:
                continue
            can_id, entry_release, _, winner = heapq.heappop(pending)
            start = entry_release if entry_release > free else free
            if left[winner] > 0:
                end = start + durations_list[winner] + error_s
                left[winner] -= 1
                dead = left[winner] == 0 and not transmit_list[winner]
                block_index.append(winner)
                block_start.append(start)
                block_end.append(end)
                block_corr.append(True)
                block_retry.append(attempts_total[winner] - 1 - left[winner])
                block_boff.append(dead)
                if not dead:
                    # The retransmission re-arbitrates from its error
                    # frame's completion.
                    heapq.heappush(pending, (can_id, end, sequence, winner))
                    sequence += 1
            else:
                end = start + durations_list[winner]
                block_index.append(winner)
                block_start.append(start)
                block_end.append(end)
                block_corr.append(False)
                block_retry.append(attempts_total[winner])
                block_boff.append(False)
            free = end
        emitted = len(block_index)
        out_index[count : count + emitted] = block_index
        out_start[count : count + emitted] = block_start
        out_end[count : count + emitted] = block_end
        out_corr[count : count + emitted] = block_corr
        out_retry[count : count + emitted] = block_retry
        out_boff[count : count + emitted] = block_boff
        count += emitted

    kept = int(np.searchsorted(out_end[:count], duration, side="right"))
    survivors = out_index[:kept]
    capture = CaptureArray(
        timestamps=out_end[:kept].copy(),
        can_ids=schedule.can_ids[survivors],
        dlcs=schedule.dlcs[survivors],
        payloads=schedule.payloads[survivors],
        labels=schedule.labels[survivors],
    )
    return ArbitrationResult(
        capture=capture,
        sources=schedule.sources[survivors],
        queued_at=schedule.release_times[survivors],
        started_at=out_start[:kept].copy(),
        wire_bits=wire_bits[survivors],
        schedule_indices=survivors.copy(),
        bitrate=float(bitrate),
        duration=float(duration),
        corrupted=out_corr[:kept].copy(),
        retries=out_retry[:kept].copy(),
        bus_off=out_boff[:kept].copy(),
    )
