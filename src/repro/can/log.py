"""Car-Hacking-dataset-compatible capture records and CSV I/O.

The public Car-Hacking dataset (Song, Woo & Kim 2020) ships CSV files
with rows of the form::

    Timestamp, ID (hex), DLC, DATA0, ..., DATA[DLC-1], Flag

where ``Flag`` is ``R`` for regular traffic and ``T`` for injected
frames.  This module reads and writes that exact schema, so the
synthetic captures produced by :mod:`repro.datasets.carhacking` and the
real dataset files are interchangeable everywhere in the library.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.can.bus import BusRecord
from repro.can.frame import CANFrame
from repro.errors import DatasetError

__all__ = ["CANLogRecord", "read_car_hacking_csv", "write_car_hacking_csv", "records_from_bus"]

LABEL_NORMAL = "R"
LABEL_ATTACK = "T"


@dataclass(frozen=True)
class CANLogRecord:
    """One captured frame: what an IDS sees at the CAN interface."""

    timestamp: float
    can_id: int
    dlc: int
    data: bytes
    label: str

    def __post_init__(self) -> None:
        if self.label not in (LABEL_NORMAL, LABEL_ATTACK):
            raise DatasetError(f"label must be 'R' or 'T', got {self.label!r}")
        if self.dlc != len(self.data):
            raise DatasetError(f"dlc {self.dlc} != payload length {len(self.data)}")

    @property
    def is_attack(self) -> bool:
        return self.label == LABEL_ATTACK

    def to_frame(self) -> CANFrame:
        """Reconstruct the wire-level frame."""
        return CANFrame(self.can_id, self.data)


def records_from_bus(bus_records: Iterable[BusRecord]) -> list[CANLogRecord]:
    """Convert simulator output into capture records."""
    return [
        CANLogRecord(
            timestamp=record.timestamp,
            can_id=record.frame.can_id,
            dlc=record.frame.dlc,
            data=record.frame.data,
            label=record.label,
        )
        for record in bus_records
    ]


def write_car_hacking_csv(records: Sequence[CANLogRecord], path: str | Path) -> Path:
    """Write records in the Car-Hacking dataset CSV schema."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        for record in records:
            row = [f"{record.timestamp:.6f}", f"{record.can_id:04x}", str(record.dlc)]
            row.extend(f"{byte:02x}" for byte in record.data)
            row.append(record.label)
            writer.writerow(row)
    return path


def read_car_hacking_csv(path: str | Path, limit: int | None = None) -> list[CANLogRecord]:
    """Read a Car-Hacking-schema CSV (real dataset files drop in here).

    Handles the dataset's quirks: variable column counts (rows carry
    ``DLC`` data bytes), uppercase/lowercase hex, and optional header
    rows (skipped when the first cell is not numeric).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"capture file not found: {path}")
    records: list[CANLogRecord] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row:
                continue
            try:
                timestamp = float(row[0])
            except ValueError:
                if row_number == 0:
                    continue  # header row
                raise DatasetError(f"{path}:{row_number + 1}: bad timestamp {row[0]!r}")
            try:
                can_id = int(row[1], 16)
                dlc = int(row[2])
                data = bytes(int(cell, 16) for cell in row[3 : 3 + dlc])
                label = row[3 + dlc].strip()
            except (ValueError, IndexError) as exc:
                raise DatasetError(f"{path}:{row_number + 1}: malformed row ({exc})")
            records.append(CANLogRecord(timestamp, can_id, dlc, data, label))
            if limit is not None and len(records) >= limit:
                break
    return records
