"""Car-Hacking-dataset-compatible capture records and CSV I/O.

The public Car-Hacking dataset (Song, Woo & Kim 2020) ships CSV files
with rows of the form::

    Timestamp, ID (hex), DLC, DATA0, ..., DATA[DLC-1], Flag

where ``Flag`` is ``R`` for regular traffic and ``T`` for injected
frames.  This module reads and writes that exact schema, so the
synthetic captures produced by :mod:`repro.datasets.carhacking` and the
real dataset files are interchangeable everywhere in the library.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence, cast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.can.fastbus import ArbitrationResult

import numpy as np

from repro.can.bus import BusRecord
from repro.can.frame import CANFrame
from repro.errors import DatasetError

__all__ = [
    "CANLogRecord",
    "CaptureArray",
    "read_car_hacking_csv",
    "write_car_hacking_csv",
    "records_from_bus",
]

LABEL_NORMAL = "R"
LABEL_ATTACK = "T"


@dataclass(frozen=True)
class CANLogRecord:
    """One captured frame: what an IDS sees at the CAN interface."""

    timestamp: float
    can_id: int
    dlc: int
    data: bytes
    label: str

    def __post_init__(self) -> None:
        if self.label not in (LABEL_NORMAL, LABEL_ATTACK):
            raise DatasetError(f"label must be 'R' or 'T', got {self.label!r}")
        if self.dlc != len(self.data):
            raise DatasetError(f"dlc {self.dlc} != payload length {len(self.data)}")

    @property
    def is_attack(self) -> bool:
        return self.label == LABEL_ATTACK

    def to_frame(self) -> CANFrame:
        """Reconstruct the wire-level frame."""
        return CANFrame(self.can_id, self.data)


#: Payload slots per frame in the columnar layout (classic CAN maximum).
MAX_PAYLOAD_BYTES = 8


@dataclass(frozen=True)
class CaptureArray:
    """Columnar capture: one structured array per field, built once.

    The row-oriented :class:`CANLogRecord` list is the interchange
    format; this is the compute format.  Payloads are zero-padded to
    eight bytes (``dlcs`` preserves the true lengths), so encoders can
    run whole-capture numpy kernels instead of per-frame Python loops.
    """

    timestamps: np.ndarray  #: (N,) float64 reception timestamps
    can_ids: np.ndarray  #: (N,) int64 identifiers
    dlcs: np.ndarray  #: (N,) int64 true payload lengths
    payloads: np.ndarray  #: (N, 8) uint8, zero-padded payload bytes
    labels: np.ndarray  #: (N,) int64, 1 for attack ("T") frames

    def __post_init__(self) -> None:
        n = self.timestamps.shape[0]
        # reprolint: disable=hot-path-purity -- iterates field names for shape validation, not frames
        for name in ("can_ids", "dlcs", "labels"):
            if getattr(self, name).shape != (n,):
                raise DatasetError(f"CaptureArray field {name} must have shape ({n},)")
        if self.payloads.shape != (n, MAX_PAYLOAD_BYTES):
            raise DatasetError(
                f"CaptureArray payloads must have shape ({n}, {MAX_PAYLOAD_BYTES}), "
                f"got {self.payloads.shape}"
            )
        if self.payloads.dtype != np.uint8:
            raise DatasetError(f"CaptureArray payloads must be uint8, got {self.payloads.dtype}")

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def __getitem__(
        self, index: int | np.integer | slice | np.ndarray
    ) -> "CaptureArray":
        """Slice / boolean-mask / fancy-index into a new CaptureArray."""
        if isinstance(index, (int, np.integer)):
            position = int(index) + len(self) if index < 0 else int(index)
            if not 0 <= position < len(self):
                raise IndexError(f"index {index} out of range for {len(self)}-frame capture")
            index = slice(position, position + 1)
        return CaptureArray(
            timestamps=self.timestamps[index],
            can_ids=self.can_ids[index],
            dlcs=self.dlcs[index],
            payloads=self.payloads[index],
            labels=self.labels[index],
        )

    @classmethod
    def coerce(
        cls, records: "CaptureArray | ArbitrationResult | Sequence[CANLogRecord]"
    ) -> "CaptureArray":
        """Pass through a CaptureArray, convert a record list.

        Also unwraps anything carrying a ``capture`` CaptureArray
        attribute — e.g. the columnar bus engine's
        :class:`~repro.can.fastbus.ArbitrationResult` — so simulated
        windows feed the ECU/gateway paths without a conversion step.
        """
        if isinstance(records, CaptureArray):
            return records
        inner = getattr(records, "capture", None)
        if isinstance(inner, CaptureArray):
            return inner
        return cls.from_records(cast("Sequence[CANLogRecord]", records))

    @classmethod
    def from_bus_records(cls, bus_records: Iterable[BusRecord]) -> "CaptureArray":
        """Columnar capture straight from simulator output.

        One pass over the :class:`~repro.can.bus.BusRecord` list — no
        intermediate :class:`CANLogRecord` allocation per frame, unlike
        ``from_records(records_from_bus(...))``; field-identical to
        that composition.
        """
        records = bus_records if isinstance(bus_records, list) else list(bus_records)
        n = len(records)
        timestamps = np.fromiter((r.timestamp for r in records), dtype=np.float64, count=n)
        can_ids = np.fromiter((r.frame.can_id for r in records), dtype=np.int64, count=n)
        dlcs = np.fromiter((r.frame.dlc for r in records), dtype=np.int64, count=n)
        padded = b"".join(
            r.frame.data + bytes(MAX_PAYLOAD_BYTES - r.frame.dlc) for r in records
        )
        payloads = np.frombuffer(padded, dtype=np.uint8).reshape(n, MAX_PAYLOAD_BYTES).copy()
        labels = np.fromiter(
            (1 if r.label == LABEL_ATTACK else 0 for r in records), dtype=np.int64, count=n
        )
        return cls(timestamps, can_ids, dlcs, payloads, labels)

    @classmethod
    def from_records(cls, records: Sequence[CANLogRecord]) -> "CaptureArray":
        """Build the columnar form in one pass over a record list."""
        n = len(records)
        timestamps = np.fromiter((r.timestamp for r in records), dtype=np.float64, count=n)
        can_ids = np.fromiter((r.can_id for r in records), dtype=np.int64, count=n)
        dlcs = np.fromiter((r.dlc for r in records), dtype=np.int64, count=n)
        padded = b"".join(r.data + bytes(MAX_PAYLOAD_BYTES - len(r.data)) for r in records)
        payloads = np.frombuffer(padded, dtype=np.uint8).reshape(n, MAX_PAYLOAD_BYTES).copy()
        labels = np.fromiter((1 if r.is_attack else 0 for r in records), dtype=np.int64, count=n)
        return cls(timestamps, can_ids, dlcs, payloads, labels)

    def to_records(self) -> list[CANLogRecord]:
        """Round-trip back to the row-oriented interchange form."""
        return [
            CANLogRecord(
                timestamp=float(self.timestamps[i]),
                can_id=int(self.can_ids[i]),
                dlc=int(self.dlcs[i]),
                data=self.payloads[i, : int(self.dlcs[i])].tobytes(),
                label=LABEL_ATTACK if self.labels[i] else LABEL_NORMAL,
            )
            for i in range(len(self))
        ]

    @classmethod
    def concatenate(cls, parts: Sequence["CaptureArray"]) -> "CaptureArray":
        """Stitch captures together (e.g. stream-chunk context carry)."""
        if not parts:
            raise DatasetError("cannot concatenate zero CaptureArrays")
        return cls(
            timestamps=np.concatenate([p.timestamps for p in parts]),
            can_ids=np.concatenate([p.can_ids for p in parts]),
            dlcs=np.concatenate([p.dlcs for p in parts]),
            payloads=np.concatenate([p.payloads for p in parts], axis=0),
            labels=np.concatenate([p.labels for p in parts]),
        )

    @classmethod
    def concat(cls, parts: Sequence["CaptureArray"]) -> "CaptureArray":
        """Alias of :meth:`concatenate`."""
        return cls.concatenate(parts)

    def iter_windows(
        self, window_s: float, origin: float | None = None
    ) -> Iterator["CaptureArray"]:
        """Yield consecutive virtual-time windows as zero-copy views.

        Window ``k`` covers ``[origin + k*window_s, origin + (k+1)*window_s)``
        with ``origin`` defaulting to the first timestamp.  Every window
        up to the one containing the last frame is yielded, including
        empty ones (the bus being silent is itself a signal to
        rate-based detectors); frames before ``origin`` are skipped.
        Each yield is a contiguous slice sharing this capture's buffers.
        """
        if window_s <= 0:
            raise DatasetError(f"window_s must be positive, got {window_s}")
        if len(self) == 0:
            return
        start = float(self.timestamps[0]) if origin is None else float(origin)
        last = float(self.timestamps[-1])
        if last < start:
            return
        count = int(np.floor((last - start) / window_s)) + 1
        edges = start + window_s * np.arange(count + 1, dtype=np.float64)
        bounds = np.searchsorted(self.timestamps, edges, side="left")
        for k in range(count):
            yield self[int(bounds[k]) : int(bounds[k + 1])]


def records_from_bus(bus_records: Iterable[BusRecord]) -> list[CANLogRecord]:
    """Convert simulator output into capture records."""
    return [
        CANLogRecord(
            timestamp=record.timestamp,
            can_id=record.frame.can_id,
            dlc=record.frame.dlc,
            data=record.frame.data,
            label=record.label,
        )
        for record in bus_records
    ]


def write_car_hacking_csv(
    records: "CaptureArray | Sequence[CANLogRecord]", path: str | Path
) -> Path:
    """Write a capture in the Car-Hacking dataset CSV schema.

    Accepts the columnar :class:`CaptureArray` directly (rows are
    formatted straight from the field arrays — no per-frame
    :class:`CANLogRecord` allocation) as well as a record list.
    """
    capture = CaptureArray.coerce(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    timestamps = capture.timestamps
    can_ids = capture.can_ids
    dlcs = capture.dlcs
    payloads = capture.payloads
    labels = capture.labels
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        for i in range(len(capture)):
            dlc = int(dlcs[i])
            row = [f"{timestamps[i]:.6f}", f"{int(can_ids[i]):04x}", str(dlc)]
            row.extend(f"{byte:02x}" for byte in payloads[i, :dlc])
            row.append(LABEL_ATTACK if labels[i] else LABEL_NORMAL)
            writer.writerow(row)
    return path


def read_car_hacking_csv(path: str | Path, limit: int | None = None) -> list[CANLogRecord]:
    """Read a Car-Hacking-schema CSV (real dataset files drop in here).

    Handles the dataset's quirks: variable column counts (rows carry
    ``DLC`` data bytes), uppercase/lowercase hex, and optional header
    rows (skipped when the first cell is not numeric).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"capture file not found: {path}")
    records: list[CANLogRecord] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if not row:
                continue
            try:
                timestamp = float(row[0])
            except ValueError:
                if row_number == 0:
                    continue  # header row
                raise DatasetError(f"{path}:{row_number + 1}: bad timestamp {row[0]!r}")
            try:
                can_id = int(row[1], 16)
                dlc = int(row[2])
                data = bytes(int(cell, 16) for cell in row[3 : 3 + dlc])
                label = row[3 + dlc].strip()
            except (ValueError, IndexError) as exc:
                raise DatasetError(f"{path}:{row_number + 1}: malformed row ({exc})")
            records.append(CANLogRecord(timestamp, can_id, dlc, data, label))
            if limit is not None and len(records) >= limit:
                break
    return records
