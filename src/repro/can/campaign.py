"""Declarative attack campaigns over multi-segment vehicle topologies.

The Car-Hacking dataset — and the paper's evaluation — covers one
attacker, one window, one bus.  Deployment-grade evaluation (SecCAN,
the lightweight IDS-ECU architecture) needs *campaigns*: several
attackers, staggered or overlapping in time, spread across the gateway
segments the IDS actually monitors.  This module makes those scenarios
declarative:

* an :class:`AttackPhase` names one attacker (kind + parameters), its
  active window and its target channel;
* a :class:`Campaign` is a list of phases over a named multi-channel
  topology, with per-channel ground-truth windows derived from the
  phases;
* :func:`compile_campaign` lowers a campaign onto real
  :class:`~repro.can.bus.BusSimulator` instances — one per channel,
  each carrying the standard vehicle ID population — attaching
  injectors and splicing suspension/masquerade wrappers around the
  victim senders;
* a :class:`ScenarioRegistry` (module instance: :data:`SCENARIOS`)
  names the canonical scenarios, from single-attack baselines to
  overlapping mixed multi-segment campaigns, so experiments, tests and
  benchmarks sweep one shared catalogue.

Ground truth is attached at the source: every injected or tampered
frame carries the ``"T"`` label through the bus simulator into the
capture, and :meth:`Campaign.truth_windows` exposes the per-channel
phase windows (with slack for delayed frames) that the gateway uses to
attribute per-channel verdicts back to phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.can.attacks import (
    DEFAULT_SUSPENSION_DELAY,
    BurstDoSAttacker,
    BusOffAttacker,
    DoSAttacker,
    FuzzyAttacker,
    MasqueradeAttacker,
    RampDoSAttacker,
    ReplayAttacker,
    SpoofingAttacker,
    SuspensionAttacker,
)
from repro.can.bus import BITRATE_HS_CAN, BusSimulator
from repro.can.frame import CANFrame
from repro.errors import CANError, ConfigError
from repro.utils.rng import derive_seed

__all__ = [
    "ATTACK_KINDS",
    "AttackPhase",
    "Campaign",
    "PhaseWindow",
    "ScenarioRegistry",
    "SCENARIOS",
    "compile_campaign",
    "scenario_detector",
]

#: Attacker kinds a phase may name.
ATTACK_KINDS = (
    "dos",
    "fuzzy",
    "spoof",
    "replay",
    "burst-dos",
    "ramp-dos",
    "suspension",
    "masquerade",
    "bus-off",
)

#: Kinds that put labelled frames on the wire (suspension in drop mode
#: removes frames instead — its evidence is absence).
INJECTING_KINDS = ("dos", "fuzzy", "spoof", "replay", "burst-dos", "ramp-dos", "masquerade")

#: One per-channel ground-truth window: (phase name, start, end, injects).
#: ``injects`` tells the gateway whether the phase puts labelled frames
#: on the wire, so attribution never falls back to window containment
#: for campaign phases (see :func:`repro.soc.gateway._phase_outcomes`).
PhaseWindow = tuple[str, float, float, bool]


@dataclass(frozen=True)
class AttackPhase:
    """One attacker, one window, one channel.

    ``params`` feed the attacker's constructor (e.g. ``target_id`` for
    spoof/masquerade/suspension, ``interval`` for floods, ``mode`` and
    ``delay`` for suspension); unknown parameters raise at compile time
    via the attacker's own validation.
    """

    kind: str
    start: float
    end: float
    channel: str = "segment0"
    params: Mapping[str, Any] = field(default_factory=dict)
    name: str = ""  #: optional label; campaigns default it to kind@channel#i

    def __post_init__(self) -> None:
        if self.kind not in ATTACK_KINDS:
            raise CANError(f"unknown attack kind {self.kind!r}; choose from {ATTACK_KINDS}")
        if self.start < 0 or self.end <= self.start:
            raise CANError(f"phase window ({self.start}, {self.end}) is empty or negative")
        if (
            self.kind in ("suspension", "masquerade", "bus-off")
            and "target_id" not in self.params
        ):
            raise CANError(f"{self.kind} phase needs params['target_id']")
        # The compiler owns these: the attacker's name IS the phase label
        # (source-based attribution depends on it), its window comes from
        # the phase, and its seed derives from the campaign.
        reserved = {"name", "seed", "windows", "window"} & set(self.params)
        if reserved:
            raise CANError(
                f"phase params may not set {sorted(reserved)}; "
                f"they are campaign-managed (name/seed/window come from the phase)"
            )

    @property
    def window(self) -> tuple[float, float]:
        return (self.start, self.end)

    @property
    def label_slack(self) -> float:
        """Seconds past ``end`` a frame this phase tampered may be released.

        Only delay-mode suspension releases frames after its window (a
        frame tampered at ``end - ε`` is released at ``end - ε + delay``);
        every injector clips its releases strictly inside the window.
        """
        if self.kind == "suspension" and self.params.get("mode", "drop") == "delay":
            return float(self.params.get("delay", DEFAULT_SUSPENSION_DELAY))
        return 0.0

    @property
    def injects(self) -> bool:
        """Does this phase put ``"T"``-labelled frames on the wire?"""
        if self.kind == "suspension":
            return self.params.get("mode", "drop") == "delay"
        return self.kind in INJECTING_KINDS


@dataclass(frozen=True)
class Campaign:
    """A named list of attack phases over a multi-channel topology."""

    name: str
    duration: float
    channels: tuple[str, ...]
    phases: tuple[AttackPhase, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise CANError(f"campaign duration must be positive, got {self.duration}")
        if not self.channels:
            raise CANError("campaign needs at least one channel")
        if len(set(self.channels)) != len(self.channels):
            raise CANError(f"duplicate channel names in {self.channels}")
        for channel in self.channels:
            if not channel or not channel.replace("-", "_").isidentifier():
                raise CANError(f"channel name must be identifier-like, got {channel!r}")
        for phase in self.phases:
            if phase.channel not in self.channels:
                raise CANError(
                    f"phase {phase.kind!r} targets unknown channel {phase.channel!r}; "
                    f"campaign has {self.channels}"
                )
            if phase.start >= self.duration:
                raise CANError(
                    f"phase {phase.kind!r} starts at {phase.start} s, "
                    f"beyond the {self.duration} s campaign"
                )

    def phase_name(self, index: int) -> str:
        """Stable display name of the ``index``-th phase."""
        phase = self.phases[index]
        return phase.name or f"{phase.kind}@{phase.channel}#{index}"

    def named_phases(self) -> Iterator[tuple[str, AttackPhase]]:
        for index, phase in enumerate(self.phases):
            yield self.phase_name(index), phase

    def phases_on(self, channel: str) -> list[AttackPhase]:
        return [phase for phase in self.phases if phase.channel == channel]

    def truth_windows(self) -> dict[str, list[PhaseWindow]]:
        """Per-channel ground truth: ``{channel: [(name, start, end, injects)]}``.

        Window ends include each phase's :attr:`~AttackPhase.label_slack`
        so delayed (tampered) frames released just past the window still
        attribute to their phase; ``injects`` flags whether the phase
        puts labelled frames on the wire (drop-mode suspension does
        not — its evidence is absence).  Channels without phases map to
        ``[]``.
        """
        windows: dict[str, list[PhaseWindow]] = {channel: [] for channel in self.channels}
        for name, phase in self.named_phases():
            windows[phase.channel].append(
                (name, phase.start, phase.end + phase.label_slack, phase.injects)
            )
        return windows

    def attack_windows(self, channel: str) -> list[tuple[float, float]]:
        """Plain (start, end+slack) windows of the phases on ``channel``."""
        return [(start, end) for _, start, end, _ in self.truth_windows()[channel]]

    def shifted(self, offset: float) -> "Campaign":
        """The same campaign with every attack onset delayed by ``offset``.

        The staggered-fleet primitive: a population of vehicles running
        the same scenario should not all come under attack at the same
        virtual second.  The campaign duration grows by ``offset`` so
        the shifted phases keep their full window (and their trailing
        clean interval) inside the simulated horizon; clean traffic
        before the first phase simply lasts ``offset`` seconds longer.
        ``offset=0`` returns ``self`` unchanged.
        """
        if not (offset >= 0.0) or offset == float("inf"):
            raise ConfigError(f"onset offset must be finite and >= 0, got {offset}")
        if offset == 0:
            return self
        return Campaign(
            name=self.name,
            duration=self.duration + offset,
            channels=self.channels,
            phases=tuple(
                AttackPhase(
                    kind=phase.kind,
                    start=phase.start + offset,
                    end=phase.end + offset,
                    channel=phase.channel,
                    params=phase.params,
                    name=phase.name,
                )
                for phase in self.phases
            ),
            description=self.description,
        )

    def summary(self) -> str:
        lines = [
            f"Campaign {self.name!r}: {len(self.channels)} channel(s), "
            f"{len(self.phases)} phase(s) over {self.duration:g} s"
        ]
        if self.description:
            lines.append(f"  {self.description}")
        for name, phase in self.named_phases():
            lines.append(
                f"  [{phase.channel}] {name}: {phase.start:g}-{phase.end:g} s"
                + (f" {dict(phase.params)}" if phase.params else "")
            )
        return "\n".join(lines)


def _find_sender(bus: BusSimulator, can_id: int, channel: str):
    """Locate the (possibly already wrapped) sender of ``can_id`` on ``bus``."""
    for index, source in enumerate(bus.sources):
        if getattr(source, "can_id", None) == can_id:
            return index, source
    raise CANError(
        f"no sender of id 0x{can_id:03X} on channel {channel!r} to attack; "
        f"suspension/masquerade need a legitimate victim"
    )


def _replay_source(
    phase: AttackPhase,
    vehicle_seed: int,
    bitrate: float,
    seed: int,
    name: str,
    profile: str = "full",
) -> ReplayAttacker:
    """Build a replay injector from the channel's own clean traffic.

    Unless the phase supplies an explicit ``capture``/``offsets`` pair,
    the compiler records the victim channel's attack-free traffic (same
    vehicle seed → identical senders) for ``source_duration`` seconds
    and replays those frames — ids, payloads and pacing all legitimate,
    only *stale* — shifted to the phase window.
    """
    from repro.datasets.carhacking import build_vehicle_bus

    params = phase.params
    if "capture" in params:
        return ReplayAttacker(
            params["capture"],
            params["offsets"],
            windows=[phase.window],
            name=name,
            seed=seed,
        )
    source_duration = float(params.get("source_duration", min(phase.end - phase.start, 1.0)))
    # The columnar engine records the clean window (bit-exact against
    # the event engine, without per-frame record objects).
    clean = build_vehicle_bus(
        vehicle_seed=vehicle_seed, bitrate=bitrate, profile=profile
    ).capture(source_duration)
    if not len(clean):
        raise CANError(f"replay phase recorded no clean traffic in {source_duration} s")
    origin = clean.queued_at[0]
    frames = [
        CANFrame(int(clean.capture.can_ids[i]), clean.capture.payloads[i, : int(clean.capture.dlcs[i])].tobytes())
        for i in range(len(clean))
    ]
    offsets = (clean.queued_at - origin).tolist()
    return ReplayAttacker(frames, offsets, windows=[phase.window], name=name, seed=seed)


def _apply_phase(
    bus: BusSimulator,
    phase: AttackPhase,
    label: str,
    channel_vehicle_seed: int,
    bitrate: float,
    seed: int,
    profile: str = "full",
) -> None:
    """Attach (or splice) one phase's attacker onto a channel bus.

    The attacker is named after the phase ``label``, so every frame it
    injects (or tampers) records *which phase* produced it in the bus
    record's ``source`` — what the gateway's phase attribution uses to
    keep overlapping phases from crediting each other's detections.
    """
    params = dict(phase.params)
    params["name"] = label  # AttackPhase rejects a user-supplied name
    window = [phase.window]
    if phase.kind == "dos":
        bus.attach(DoSAttacker(window, seed=seed, **params))
    elif phase.kind == "fuzzy":
        bus.attach(FuzzyAttacker(window, seed=seed, **params))
    elif phase.kind == "spoof":
        bus.attach(SpoofingAttacker(window, seed=seed, **params))
    elif phase.kind == "burst-dos":
        bus.attach(BurstDoSAttacker(window, seed=seed, **params))
    elif phase.kind == "ramp-dos":
        bus.attach(RampDoSAttacker(window, seed=seed, **params))
    elif phase.kind == "replay":
        name = params.pop("name")
        bus.attach(
            _replay_source(phase, channel_vehicle_seed, bitrate, seed, name, profile)
        )
    elif phase.kind == "bus-off":
        # The victim stays attached: the attacker corrupts its frames on
        # the wire (via targeted wire faults) rather than replacing it.
        target_id = params.pop("target_id")
        _find_sender(bus, target_id, phase.channel)  # fail early if absent
        bus.attach(BusOffAttacker(window, target_id=target_id, seed=seed, **params))
    elif phase.kind == "suspension":
        target_id = params.pop("target_id")
        index, victim = _find_sender(bus, target_id, phase.channel)
        bus.sources[index] = SuspensionAttacker(
            victim, window, target_id=target_id, **params
        )
    elif phase.kind == "masquerade":
        target_id = params.pop("target_id")
        index, victim = _find_sender(bus, target_id, phase.channel)
        bus.sources[index] = MasqueradeAttacker(
            victim, window, target_id=target_id, seed=seed, **params
        )
    else:  # pragma: no cover - AttackPhase validates kinds
        raise CANError(f"unknown attack kind {phase.kind!r}")


def compile_campaign(
    campaign: Campaign,
    vehicle_seed: int = 0,
    bitrate: float = BITRATE_HS_CAN,
    profile: str = "full",
) -> dict[str, BusSimulator]:
    """Lower a campaign onto one :class:`BusSimulator` per channel.

    Each channel carries the vehicle ID population of ``profile``
    (:data:`~repro.datasets.carhacking.VEHICLE_PROFILES`), seeded
    ``vehicle_seed + channel_index`` so segments are same-family but
    distinct vehicles' worth of traffic, as in the gateway fixtures;
    phases attach their injectors, and suspension/masquerade phases
    splice their wrapper around the victim sender in place.  Attacker
    seeds derive from the campaign name and phase position, so a
    campaign is fully reproducible from
    ``(campaign, vehicle_seed, profile)``.
    """
    from repro.datasets.carhacking import build_vehicle_bus

    buses: dict[str, BusSimulator] = {}
    for index, channel in enumerate(campaign.channels):
        buses[channel] = build_vehicle_bus(
            vehicle_seed=vehicle_seed + index, bitrate=bitrate, profile=profile
        )
    for position, phase in enumerate(campaign.phases):
        channel_index = campaign.channels.index(phase.channel)
        seed = derive_seed(vehicle_seed, f"campaign-{campaign.name}-phase{position}")
        _apply_phase(
            buses[phase.channel],
            phase,
            campaign.phase_name(position),
            vehicle_seed + channel_index,
            bitrate,
            seed,
            profile,
        )
    return buses


def scenario_detector(campaign: Campaign) -> str:
    """The trained detector matching a campaign's attack mechanics.

    Walks the phases in order and returns the first kind with a trained
    counterpart: DoS-family floods map to ``"dos"``, fuzzing to
    ``"fuzzy"``, spoof/masquerade to the gauge they forge (``"gear"``
    for 0x43F, ``"rpm"`` otherwise).  Replay and suspension have no
    per-frame-signature detector — campaigns made only of those fall
    back to ``"dos"`` and honestly read as coverage gaps in the sweep
    table.
    """
    for phase in campaign.phases:
        if phase.kind in ("dos", "burst-dos", "ramp-dos"):
            return "dos"
        if phase.kind == "fuzzy":
            return "fuzzy"
        if phase.kind in ("spoof", "masquerade"):
            return "gear" if phase.params.get("target_id") == 0x43F else "rpm"
    return "dos"


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------


class ScenarioRegistry:
    """Named campaign factories: one catalogue for experiments and tests.

    A factory is any callable returning a :class:`Campaign`; it must
    accept a ``duration`` keyword (scenarios scale to the caller's time
    budget — tests run them short, benchmarks long).  Register with the
    decorator form::

        @SCENARIOS.register("my-scenario", "one-line description")
        def _my_scenario(duration: float = 4.0) -> Campaign: ...
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Campaign]] = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self, name: str, description: str
    ) -> Callable[[Callable[..., Campaign]], Callable[..., Campaign]]:
        if name in self._factories:
            raise CANError(f"scenario {name!r} already registered")

        def decorator(factory: Callable[..., Campaign]) -> Callable[..., Campaign]:
            self._factories[name] = factory
            self._descriptions[name] = description
            return factory

        return decorator

    def names(self) -> list[str]:
        return list(self._factories)

    def describe(self) -> dict[str, str]:
        """``{scenario name: one-line description}`` in registration order."""
        return dict(self._descriptions)

    def build(self, name: str, duration: float | None = None) -> Campaign:
        """Instantiate a registered scenario (optionally rescaled in time)."""
        if name not in self._factories:
            raise CANError(f"unknown scenario {name!r}; registered: {self.names()}")
        if duration is None:
            return self._factories[name]()
        return self._factories[name](duration=duration)

    def __len__(self) -> int:
        return len(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)


#: The canonical scenario catalogue.
SCENARIOS = ScenarioRegistry()

#: Channel names of the canonical 3-segment gateway topology.
GATEWAY_SEGMENTS = ("powertrain", "body", "telematics")


def _single(
    name: str,
    duration: float,
    kind: str,
    description: str,
    params: Mapping[str, Any] | None = None,
    cover: tuple[float, float] = (0.15, 0.65),
) -> Campaign:
    """One channel, one phase spanning the middle of the run."""
    start, end = duration * cover[0], duration * cover[1]
    return Campaign(
        name=name,
        duration=duration,
        channels=("powertrain",),
        phases=(AttackPhase(kind, start, end, "powertrain", dict(params or {})),),
        description=description,
    )


@SCENARIOS.register("baseline-dos", "single 0x000 flood burst on one segment (paper's DoS)")
def _baseline_dos(duration: float = 4.0) -> Campaign:
    return _single("baseline-dos", duration, "dos", "the paper's DoS capture, one burst")


@SCENARIOS.register("baseline-fuzzy", "single random-id/payload burst (paper's Fuzzy)")
def _baseline_fuzzy(duration: float = 4.0) -> Campaign:
    return _single("baseline-fuzzy", duration, "fuzzy", "the paper's Fuzzy capture, one burst")


@SCENARIOS.register("baseline-spoof-rpm", "single RPM (0x316) spoofing burst")
def _baseline_spoof(duration: float = 4.0) -> Campaign:
    return _single(
        "baseline-spoof-rpm", duration, "spoof",
        "the paper's RPM spoofing capture, one burst", {"target_id": 0x316},
    )


@SCENARIOS.register("baseline-replay", "replay of the channel's own stale clean traffic")
def _baseline_replay(duration: float = 4.0) -> Campaign:
    return _single(
        "baseline-replay", duration, "replay",
        "stale legitimate frames replayed at original pacing",
    )


@SCENARIOS.register("masquerade-rpm", "suppress the RPM sender and spoof at its cadence")
def _masquerade_rpm(duration: float = 4.0) -> Campaign:
    return _single(
        "masquerade-rpm", duration, "masquerade",
        "timing-plausible spoof: only payloads betray it", {"target_id": 0x316},
    )


@SCENARIOS.register("suspension-delay", "delay the gear sender's frames without reordering")
def _suspension_delay(duration: float = 4.0) -> Campaign:
    return _single(
        "suspension-delay", duration, "suspension",
        "gear (0x43F) frames arrive 30 ms late inside the window",
        {"target_id": 0x43F, "mode": "delay", "delay": 0.030},
    )


@SCENARIOS.register("suspension-drop", "silence the gear sender (frames vanish)")
def _suspension_drop(duration: float = 4.0) -> Campaign:
    return _single(
        "suspension-drop", duration, "suspension",
        "gear (0x43F) goes silent: evidence is absence, not frames",
        {"target_id": 0x43F, "mode": "drop"},
    )


@SCENARIOS.register("burst-dos", "on/off flood pulses ducking rate-window heuristics")
def _burst_dos(duration: float = 4.0) -> Campaign:
    return _single(
        "burst-dos", duration, "burst-dos",
        "50 ms flood pulses with 50 ms gaps",
        {"burst_on": 0.050, "burst_off": 0.050},
    )


@SCENARIOS.register("ramp-dos", "flood that intensifies from stealthy to saturating")
def _ramp_dos(duration: float = 4.0) -> Campaign:
    return _single(
        "ramp-dos", duration, "ramp-dos",
        "injection interval ramps 5 ms -> 0.3 ms across the window",
        {"interval_start": 0.005, "interval_end": 0.0003},
    )


@SCENARIOS.register("stealth-low-rate", "low-rate dominant-id injection below flood thresholds")
def _stealth_low_rate(duration: float = 4.0) -> Campaign:
    return _single(
        "stealth-low-rate", duration, "dos",
        "0x000 every 5 ms: per-frame evidence without bus saturation",
        {"interval": 0.005},
    )


@SCENARIOS.register(
    "staggered-cross-segment", "DoS, fuzzy and spoof take turns across the 3 gateway segments"
)
def _staggered_cross_segment(duration: float = 4.0) -> Campaign:
    step = duration / 4.0
    return Campaign(
        name="staggered-cross-segment",
        duration=duration,
        channels=GATEWAY_SEGMENTS,
        phases=(
            AttackPhase("dos", 0.5 * step, 1.5 * step, "powertrain"),
            AttackPhase("fuzzy", 1.5 * step, 2.5 * step, "body"),
            AttackPhase("spoof", 2.5 * step, 3.5 * step, "telematics", {"target_id": 0x316}),
        ),
        description="attacker hops segments: each channel sees one clean-bracketed burst",
    )


@SCENARIOS.register(
    "overlapping-mixed", "simultaneous DoS + fuzzy on one segment while another is spoofed"
)
def _overlapping_mixed(duration: float = 4.0) -> Campaign:
    return Campaign(
        name="overlapping-mixed",
        duration=duration,
        channels=("powertrain", "body"),
        phases=(
            AttackPhase("dos", duration * 0.20, duration * 0.60, "powertrain"),
            AttackPhase("fuzzy", duration * 0.35, duration * 0.75, "powertrain"),
            AttackPhase("spoof", duration * 0.30, duration * 0.70, "body", {"target_id": 0x43F}),
        ),
        description="overlapping mixed traffic: windows intersect on and across segments",
    )


@SCENARIOS.register(
    "multi-segment-storm", "every gateway segment flooded at once (worst-case aggregate)"
)
def _multi_segment_storm(duration: float = 4.0) -> Campaign:
    start, end = duration * 0.25, duration * 0.70
    return Campaign(
        name="multi-segment-storm",
        duration=duration,
        channels=GATEWAY_SEGMENTS,
        phases=tuple(
            AttackPhase("dos", start, end, channel) for channel in GATEWAY_SEGMENTS
        ),
        description="simultaneous floods: no quiet segment to borrow capacity from",
    )


@SCENARIOS.register(
    "bus-off-victim", "Cho-Shin bus-off attack: error-frame corruption silences the gear ECU"
)
def _bus_off_victim(duration: float = 4.0) -> Campaign:
    return _single(
        "bus-off-victim", duration, "bus-off",
        "every 0x43F transmission is corrupted: TEC walks +8/-1 into bus-off",
        {"target_id": 0x43F},
    )


@SCENARIOS.register(
    "bus-off-under-flood", "a DoS flood masks a bus-off attack on another segment"
)
def _bus_off_under_flood(duration: float = 4.0) -> Campaign:
    return Campaign(
        name="bus-off-under-flood",
        duration=duration,
        channels=("powertrain", "body"),
        phases=(
            AttackPhase("dos", duration * 0.20, duration * 0.70, "powertrain"),
            AttackPhase(
                "bus-off", duration * 0.25, duration * 0.65, "body",
                {"target_id": 0x316, "attempts_per_frame": 4},
            ),
        ),
        description="the flood draws attention while the RPM ECU is error-framed off its bus",
    )


@SCENARIOS.register(
    "masquerade-under-flood", "a flood on one segment masks a masquerade on another"
)
def _masquerade_under_flood(duration: float = 4.0) -> Campaign:
    return Campaign(
        name="masquerade-under-flood",
        duration=duration,
        channels=("powertrain", "body"),
        phases=(
            AttackPhase("dos", duration * 0.20, duration * 0.70, "powertrain"),
            AttackPhase(
                "masquerade", duration * 0.25, duration * 0.65, "body", {"target_id": 0x316}
            ),
        ),
        description="the loud attack draws attention (and FIFO budget) from the quiet one",
    )
