"""Wire-level fault injection and ISO 11898-1 fault confinement.

The bus engines (:mod:`repro.can.bus`, :mod:`repro.can.fastbus`) model
an electrically perfect medium.  This module adds the layer a real CAN
controller spends silicon on: bit errors on the wire, error frames,
automatic retransmission, and the TEC/REC fault-confinement state
machine (error-active → error-passive at 128 → bus-off at 256, with
optional 128×11-recessive-bit recovery).

**Determinism and engine-agnosticism.**  All randomness and all state
evolution happen *before* arbitration, in :meth:`WireFaultModel.plan`:
a pure function of the release-sorted schedule columns and the model's
seed (drawn from ``new_rng(seed, "wirefault/...")``).  Both engines
consume the resulting :class:`FaultPlan` and therefore corrupt the same
transmissions, charge the same error-frame overhead and silence the
same bus-off nodes — the bit-exactness contract extends to faulted
runs.

Two documented simplifications keep the plan engine-agnostic:

* Fault confinement is evaluated in *release order* per node (the
  order both engines admit frames), not in wire-service order.  TEC
  trajectories are identical in both orders whenever a node's frames
  do not interleave with its own retransmissions, which holds for
  periodic senders.
* A bus-off node's 128×11-recessive-bit recovery timer starts at the
  release of the frame that exhausted the TEC, not at its (engine-
  dependent) completion on the wire.

Targeted corruption hooks (:class:`TargetedFault`) force extra error
frames onto specific identifiers/sources inside a time window — the
primitive the Cho–Shin-style bus-off attacker
(:class:`repro.can.attacks.BusOffAttacker`) is built on.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import derive_seed, new_rng

__all__ = [
    "ERROR_FRAME_BITS",
    "RECOVERY_MODES",
    "BUS_OFF_RECOVERY_BITS",
    "FaultPlan",
    "NodeFaultState",
    "TargetedFault",
    "WireFaultModel",
    "resolve_bus_faults",
]

#: Error flag (6 dominant bits) + error delimiter (8 recessive) + the
#: 3-bit intermission before the retransmission can arbitrate.
ERROR_FRAME_BITS = 17

#: Bus-off recovery: 128 occurrences of 11 consecutive recessive bits.
BUS_OFF_RECOVERY_BITS = 128 * 11

#: Supported bus-off recovery behaviours.
RECOVERY_MODES = ("auto", "none")

#: TEC increment per transmit error / decrement per success (ISO 11898-1).
_TEC_ERROR_STEP = 8
_TEC_SUCCESS_STEP = 1


@dataclass(frozen=True)
class TargetedFault:
    """Force error frames onto matching transmissions in a time window.

    ``can_id``/``source`` of ``None`` are wildcards; a fault with both
    unset jams every transmission released in ``[start, end)``.
    ``attempts`` extra corrupted attempts are charged per matching
    frame, on top of any bit-error-rate draws.
    """

    start: float
    end: float
    attempts: int = 1
    can_id: int | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or not math.isfinite(self.end):
            raise ConfigError(
                f"targeted fault window must be finite, got ({self.start}, {self.end})"
            )
        if self.end < self.start:
            raise ConfigError(
                f"targeted fault window must have end >= start, "
                f"got ({self.start}, {self.end})"
            )
        if self.attempts < 1:
            raise ConfigError(
                f"targeted fault attempts must be >= 1, got {self.attempts}"
            )
        if self.can_id is not None and self.can_id < 0:
            raise ConfigError(f"targeted fault can_id must be >= 0, got {self.can_id}")


@dataclass(frozen=True)
class NodeFaultState:
    """One node's fault-confinement outcome over a planned window."""

    source: str
    tec: int  #: transmit error counter at the end of the window
    peak_tec: int
    error_passive: bool  #: TEC crossed the error-passive threshold at any point
    bus_off: bool  #: node is bus-off at the end of the window
    bus_off_at: float | None  #: release time of the frame that exhausted the TEC
    recoveries: int  #: completed bus-off recoveries within the window


@dataclass(frozen=True)
class FaultPlan:
    """Per-row fault outcomes for one release-sorted schedule.

    ``attempts[k]`` corrupted attempts precede row ``k``'s outcome;
    ``transmit[k]`` says whether the row eventually transmits
    successfully (False: the node went bus-off mid-row); ``queued[k]``
    says whether the row participates in arbitration at all (False:
    its node was already bus-off at release).  ``tec_after[k]`` is the
    emitting node's TEC after the row — the trajectory the bus-off
    scenario tests assert on.
    """

    attempts: np.ndarray  #: (N,) int64 corrupted attempts per row
    transmit: np.ndarray  #: (N,) bool — row eventually transmits
    queued: np.ndarray  #: (N,) bool — row enters arbitration
    tec_after: np.ndarray  #: (N,) int64 emitting node's TEC after the row
    bus_off_rows: np.ndarray  #: (M,) int64 rows whose last attempt hit bus-off
    error_s: float  #: wire time charged per error frame (seconds)
    node_states: Mapping[str, NodeFaultState]

    def __len__(self) -> int:
        return int(self.attempts.shape[0])

    @property
    def total_attempts(self) -> int:
        """Corrupted attempts across the whole schedule."""
        return int(self.attempts.sum())

    @property
    def clean(self) -> bool:
        """True when the plan perturbs nothing (fast-path eligible)."""
        return self.total_attempts == 0 and bool(self.queued.all())

    def receiver_error_count(self) -> int:
        """Final REC of an always-listening monitor node.

        The ISO receive counter walks +1 per observed error frame and
        −1 per successful reception, clamped at zero — a Lindley
        recursion, evaluated here in closed form over release order.
        """
        if len(self) == 0:
            return 0
        deltas = self.attempts - self.transmit.astype(np.int64)
        prefix = np.cumsum(deltas, dtype=np.int64)
        running_min = np.minimum.accumulate(np.minimum(prefix, 0))
        return int(prefix[-1] - running_min[-1])


@dataclass(frozen=True)
class WireFaultModel:
    """Deterministic wire-fault configuration for one bus.

    ``bit_error_rate`` is the per-bit corruption probability; each
    transmission of a ``b``-bit frame is corrupted with probability
    ``1 - (1 - ber)**b``, and the number of corrupted attempts before
    the first clean one is drawn geometrically from
    ``new_rng(seed, "wirefault/draws")``.  ``targeted`` faults add
    forced corruption on top (see :class:`TargetedFault`).
    """

    seed: int = 0
    bit_error_rate: float = 0.0
    error_frame_bits: int = ERROR_FRAME_BITS
    tec_error_passive: int = 128
    tec_bus_off: int = 256
    recovery: str = "auto"
    max_attempts: int = 32
    targeted: tuple[TargetedFault, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ConfigError(
                f"bit_error_rate must be in [0, 1), got {self.bit_error_rate}"
            )
        if self.error_frame_bits < 0:
            raise ConfigError(
                f"error_frame_bits must be >= 0, got {self.error_frame_bits}"
            )
        if self.tec_error_passive <= 0:
            raise ConfigError(
                f"tec_error_passive must be positive, got {self.tec_error_passive}"
            )
        if self.tec_bus_off < self.tec_error_passive:
            raise ConfigError(
                f"tec_bus_off must be >= tec_error_passive "
                f"({self.tec_error_passive}), got {self.tec_bus_off}"
            )
        if self.recovery not in RECOVERY_MODES:
            raise ConfigError(
                f"recovery must be one of {RECOVERY_MODES}, got {self.recovery!r}"
            )
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        object.__setattr__(self, "targeted", tuple(self.targeted))

    def scoped(self, label: str) -> "WireFaultModel":
        """An independent-stream copy for a named sub-context."""
        return dataclasses.replace(self, seed=derive_seed(self.seed, f"scope/{label}"))

    def for_channel(self, channel: str) -> "WireFaultModel":
        """An independent-stream copy for one bus channel of a gateway."""
        return dataclasses.replace(
            self, seed=derive_seed(self.seed, f"channel/{channel}")
        )

    def with_targets(self, extra: Iterable[TargetedFault]) -> "WireFaultModel":
        """This model plus additional targeted-corruption hooks."""
        return dataclasses.replace(self, targeted=self.targeted + tuple(extra))

    def plan(
        self,
        release_times: np.ndarray,
        can_ids: np.ndarray,
        wire_bits: np.ndarray,
        sources: np.ndarray,
        bitrate: float,
    ) -> FaultPlan:
        """Resolve every row's fault outcome ahead of arbitration.

        The columns must be in release-sorted order (ties in attach
        order) — the order both engines admit frames, so the plan and
        therefore the simulated wire are engine-independent.
        """
        if bitrate <= 0:
            raise ConfigError(f"bitrate must be positive, got {bitrate}")
        n = int(release_times.shape[0])
        error_s = float(self.error_frame_bits) / float(bitrate)
        attempts = np.zeros(n, dtype=np.int64)
        if n and self.bit_error_rate > 0.0:
            rng = new_rng(self.seed, "wirefault/draws")
            corrupt_p = -np.expm1(
                wire_bits.astype(np.float64) * math.log1p(-self.bit_error_rate)
            )
            clean_p = np.clip(1.0 - corrupt_p, 1e-12, 1.0)
            attempts = rng.geometric(clean_p).astype(np.int64) - 1
        if n:
            for fault in self.targeted:
                mask = (release_times >= fault.start) & (release_times < fault.end)
                if fault.can_id is not None:
                    mask &= can_ids == fault.can_id
                if fault.source is not None:
                    mask &= sources == fault.source
                attempts[mask] += int(fault.attempts)
            attempts = np.minimum(attempts, np.int64(self.max_attempts))

        transmit = np.ones(n, dtype=bool)
        queued = np.ones(n, dtype=bool)
        tec_after = np.zeros(n, dtype=np.int64)
        bus_off_rows: list[int] = []
        node_states: dict[str, NodeFaultState] = {}
        if n and bool(np.any(attempts > 0)):
            self._confine(
                release_times,
                sources,
                bitrate,
                attempts,
                transmit,
                queued,
                tec_after,
                bus_off_rows,
                node_states,
            )
        return FaultPlan(
            attempts=attempts,
            transmit=transmit,
            queued=queued,
            tec_after=tec_after,
            bus_off_rows=np.asarray(bus_off_rows, dtype=np.int64),
            error_s=error_s,
            node_states=node_states,
        )

    def _confine(
        self,
        release_times: np.ndarray,
        sources: np.ndarray,
        bitrate: float,
        attempts: np.ndarray,
        transmit: np.ndarray,
        queued: np.ndarray,
        tec_after: np.ndarray,
        bus_off_rows: list[int],
        node_states: dict[str, NodeFaultState],
    ) -> None:
        """Walk the TEC state machine per node, truncating at bus-off.

        Mutates the per-row outcome arrays in place.  Only nodes with at
        least one corrupted attempt are walked — a node that never errs
        keeps TEC 0 (decrements clamp at zero).
        """
        recovery_s = float(BUS_OFF_RECOVERY_BITS) / float(bitrate)
        faulty = np.unique(sources[attempts > 0])
        rows = np.flatnonzero(np.isin(sources, faulty))
        releases_list = release_times[rows].tolist()
        sources_list = sources[rows].tolist()
        attempts_list = attempts[rows].tolist()
        # reprolint: disable=hot-path-purity -- per-node TEC walk over faulty nodes' rows only
        tec: dict[str, int] = {}
        peak: dict[str, int] = {}
        off_until: dict[str, float] = {}  # +inf = permanently off
        off_at: dict[str, float] = {}
        recoveries: dict[str, int] = {}
        for position in range(len(rows)):
            k = int(rows[position])
            source = str(sources_list[position])
            release = float(releases_list[position])
            counter = tec.get(source, 0)
            if source in off_until:
                if self.recovery == "none" or release < off_until[source]:
                    queued[k] = False
                    transmit[k] = False
                    attempts[k] = 0
                    tec_after[k] = counter
                    continue
                del off_until[source]
                recoveries[source] = recoveries.get(source, 0) + 1
                counter = 0
            draws = int(attempts_list[position])
            if draws and counter + _TEC_ERROR_STEP * draws >= self.tec_bus_off:
                fatal = -(-(self.tec_bus_off - counter) // _TEC_ERROR_STEP)
                attempts[k] = fatal
                transmit[k] = False
                counter = counter + _TEC_ERROR_STEP * fatal
                bus_off_rows.append(k)
                off_at.setdefault(source, release)
                off_until[source] = (
                    release + recovery_s if self.recovery == "auto" else math.inf
                )
            else:
                counter = max(counter + _TEC_ERROR_STEP * draws - _TEC_SUCCESS_STEP, 0)
            tec[source] = counter
            peak[source] = max(peak.get(source, 0), counter)
            tec_after[k] = counter
        for source, counter in tec.items():
            node_states[source] = NodeFaultState(
                source=source,
                tec=counter,
                peak_tec=peak[source],
                error_passive=peak[source] >= self.tec_error_passive,
                bus_off=source in off_until,
                bus_off_at=off_at.get(source),
                recoveries=recoveries.get(source, 0),
            )


def resolve_bus_faults(
    sources: Sequence[object], faults: WireFaultModel | None
) -> WireFaultModel | None:
    """Fold attached sources' targeted faults into the bus's model.

    Sources exposing ``targeted_faults()`` (e.g. the bus-off attacker)
    contribute corruption hooks even when no ambient ``faults`` model
    was configured — a zero-BER model is synthesised so the attack
    still lands on an otherwise clean bus.  Returns ``None`` when
    there is genuinely nothing to model, including an inert ambient
    model (zero rate, no hooks) — the engines then keep the clean path
    with no fault-plan work at all.
    """
    gathered: list[TargetedFault] = []
    for source in sources:
        emitter = getattr(source, "targeted_faults", None)
        if emitter is not None:
            gathered.extend(emitter())
    if gathered:
        base = faults if faults is not None else WireFaultModel()
        return base.with_targets(gathered)
    if faults is not None and faults.bit_error_rate == 0.0 and not faults.targeted:
        return None
    return faults
