"""Event-driven CAN bus simulator with priority arbitration.

The simulator merges the release streams of every attached traffic
source and serialises them onto a single shared medium:

* the bus transmits one frame at a time;
* whenever the bus goes idle, all nodes with a pending frame arbitrate
  and the lowest identifier wins (CSMA/CR with dominant bits);
* losers stay pending and re-arbitrate at the next idle point.

This is what turns a 0.3 ms DoS injection stream into the observable
dataset phenomenon: 0x000 frames always win, and legitimate frames pile
up behind them with growing queueing latency.

Records carry both the release time and the reception-complete
timestamp, so downstream code can study attack-induced delay as well as
message content.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.can.faults import FaultPlan, WireFaultModel, resolve_bus_faults
from repro.can.frame import CANFrame
from repro.can.node import ScheduledFrame, TrafficSource
from repro.errors import CANError

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.can.fastbus import ArbitrationResult
    from repro.can.log import CaptureArray

__all__ = ["BusRecord", "BusSimulator", "bus_load"]

#: Classic high-speed CAN bitrates (bit/s).
BITRATE_HS_CAN = 500_000
BITRATE_HS_CAN_MAX = 1_000_000


@dataclass(frozen=True)
class BusRecord:
    """One frame as observed on the bus by a monitoring node.

    Attributes
    ----------
    timestamp:
        Reception-complete time (what a CAN controller timestamps).
    queued_at:
        When the sender released the frame for transmission.
    started_at:
        When the frame actually won arbitration and started transmitting.
    """

    timestamp: float
    frame: CANFrame
    label: str
    source: str
    queued_at: float
    started_at: float
    #: Wire-fault attribution (see :mod:`repro.can.faults`): this record
    #: is a corrupted attempt (ends in an error frame, not an ACK)...
    corrupted: bool = False
    #: ...preceded by this many earlier attempts of the same frame...
    retries: int = 0
    #: ...and, for a corrupted attempt, whether it drove its sender into
    #: bus-off (the frame is never retransmitted afterwards).
    bus_off: bool = False

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for the bus (arbitration losses)."""
        return self.started_at - self.queued_at


class BusSimulator:
    """Single-segment CAN bus shared by several traffic sources.

    Parameters
    ----------
    bitrate:
        Bus speed in bit/s.  High-speed CAN runs at 500 kbit/s typically
        and 1 Mbit/s maximum — the paper's line-rate claims use the
        latter.
    """

    def __init__(self, bitrate: float = BITRATE_HS_CAN):
        if bitrate <= 0:
            raise CANError(f"bitrate must be positive, got {bitrate}")
        self.bitrate = float(bitrate)
        self.sources: list[TrafficSource] = []

    def attach(self, source: TrafficSource) -> None:
        """Add a traffic source (ECU or attacker) to the bus."""
        self.sources.append(source)

    def run(
        self, duration: float, faults: WireFaultModel | None = None
    ) -> list[BusRecord]:
        """Simulate ``duration`` seconds and return observed frames in order.

        Frames still queued or in flight at the horizon are dropped (the
        capture simply ends), matching a real logging session: every
        returned record has ``timestamp <= duration`` (reception
        completed within the window).

        ``faults`` enables the wire-level fault layer
        (:mod:`repro.can.faults`): corrupted attempts appear as extra
        records flagged ``corrupted`` (each charging an error frame of
        wire time before the retransmission re-arbitrates), successful
        frames carry their ``retries`` count, and bus-off nodes fall
        silent.  Attached sources exposing ``targeted_faults()`` (the
        bus-off attacker) contribute hooks even when ``faults`` is None.
        """
        if duration <= 0:
            raise CANError(f"duration must be positive, got {duration}")
        effective = resolve_bus_faults(self.sources, faults)
        releases: list[ScheduledFrame] = []
        for source in self.sources:
            releases.extend(source.frames(duration))
        releases.sort(key=lambda s: s.release_time)
        if effective is not None:
            plan = _fault_plan_for_releases(releases, self.bitrate, effective)
            if not plan.clean:
                return _run_faulted(releases, duration, self.bitrate, plan)
            # A clean plan (zero-rate model, no targets drawn) changes
            # nothing: fall through to the clean loop.

        records: list[BusRecord] = []
        # Arbitration pool: (can_id, release_time, sequence) -> scheduled frame.
        pending: list[tuple[int, float, int, ScheduledFrame]] = []
        index = 0
        sequence = 0
        bus_free_at = 0.0

        while index < len(releases) or pending:
            if not pending:
                # Bus idle and nothing queued: jump to the next release.
                next_release = releases[index].release_time
                start_candidate = max(bus_free_at, next_release)
            else:
                start_candidate = max(bus_free_at, pending[0][3].release_time)
            # Everyone released by the idle point participates in arbitration.
            while index < len(releases) and releases[index].release_time <= start_candidate:
                scheduled = releases[index]
                heapq.heappush(
                    pending,
                    (scheduled.frame.can_id, scheduled.release_time, sequence, scheduled),
                )
                sequence += 1
                index += 1
            if not pending:
                continue
            _, _, _, winner = heapq.heappop(pending)
            start = max(bus_free_at, winner.release_time)
            end = start + winner.frame.duration(self.bitrate)
            if end > duration:
                # The capture horizon falls while this frame is (or
                # would be) on the wire: it never completes within the
                # window, and the serialised bus stays busy past the
                # horizon, so nothing behind it can complete either.
                break
            records.append(
                BusRecord(
                    timestamp=end,
                    frame=winner.frame,
                    label=winner.label,
                    source=winner.source,
                    queued_at=winner.release_time,
                    started_at=start,
                )
            )
            bus_free_at = end
        return records

    def capture(
        self, duration: float, faults: WireFaultModel | None = None
    ) -> "ArbitrationResult":
        """Simulate ``duration`` seconds on the columnar fast path.

        Bit-exact against :meth:`run` (same winners, same timestamps,
        same horizon drops — see :mod:`repro.can.fastbus`), but the
        schedule is emitted, arbitrated and recorded as numpy columns:
        no per-frame generator yields, heap pops, CRC passes or record
        objects on the hot path.  Returns the columnar
        :class:`~repro.can.fastbus.ArbitrationResult`; :meth:`run`
        remains the event-driven reference for A/B verification.
        ``faults`` mirrors :meth:`run` exactly, corruption draws and
        bus-off times included.
        """
        from repro.can.fastbus import build_schedule, simulate_arbitration

        if duration <= 0:
            raise CANError(f"duration must be positive, got {duration}")
        return simulate_arbitration(
            build_schedule(self.sources, duration),
            self.bitrate,
            duration,
            faults=resolve_bus_faults(self.sources, faults),
        )


def _fault_plan_for_releases(
    releases: Sequence[ScheduledFrame], bitrate: float, faults: WireFaultModel
) -> FaultPlan:
    """The event engine's side of the shared fault plan.

    Builds the release-sorted schedule columns the plan is defined
    over; the values are identical to the columnar engine's
    (``standard_wire_bits`` is bit-exact against ``bit_length()``), so
    both engines draw the same corruptions.
    """
    n = len(releases)
    release_times = np.fromiter(
        (s.release_time for s in releases), dtype=np.float64, count=n
    )
    can_ids = np.fromiter((s.frame.can_id for s in releases), dtype=np.int64, count=n)
    wire_bits = np.fromiter(
        (s.frame.bit_length() for s in releases), dtype=np.int64, count=n
    )
    sources = np.asarray([s.source for s in releases], dtype=np.str_)
    return faults.plan(release_times, can_ids, wire_bits, sources, bitrate)


def _run_faulted(
    releases: list[ScheduledFrame],
    duration: float,
    bitrate: float,
    plan: FaultPlan,
) -> list[BusRecord]:
    """The faulted event loop: error frames, retransmission, bus-off.

    Same arbitration semantics as the clean loop, with three additions
    driven by the precomputed :class:`~repro.can.faults.FaultPlan`:
    rows of a bus-off node never enter arbitration; a corrupted attempt
    occupies the wire for the frame plus an error frame, then re-queues
    at its completion time for re-arbitration; the heap key gains the
    entry release and a push sequence so retransmissions order exactly
    like fresh releases.
    """
    n = len(releases)
    release_f = [s.release_time for s in releases]
    durations = [s.frame.bit_length() / bitrate for s in releases]
    error_s = plan.error_s
    left = plan.attempts.tolist()
    attempts_total = plan.attempts.tolist()
    queued = plan.queued.tolist()
    transmit = plan.transmit.tolist()

    records: list[BusRecord] = []
    # Arbitration pool: (can_id, entry release, push sequence, row).
    pending: list[tuple[int, float, int, int]] = []
    index = 0
    sequence = 0
    bus_free_at = 0.0
    while True:
        if not pending:
            while index < n and not queued[index]:
                index += 1  # bus-off node: the frame is never offered
            if index >= n:
                break
            next_release = release_f[index]
            start_candidate = max(bus_free_at, next_release)
        else:
            start_candidate = max(bus_free_at, pending[0][1])
        while index < n and release_f[index] <= start_candidate:
            if queued[index]:
                scheduled = releases[index]
                heapq.heappush(
                    pending,
                    (scheduled.frame.can_id, release_f[index], sequence, index),
                )
                sequence += 1
            index += 1
        if not pending:
            continue
        can_id, entry_release, _, winner = heapq.heappop(pending)
        start = max(bus_free_at, entry_release)
        if left[winner] > 0:
            end = start + durations[winner] + error_s
        else:
            end = start + durations[winner]
        if end > duration:
            break  # horizon falls while this (attempt) is on the wire
        scheduled = releases[winner]
        if left[winner] > 0:
            left[winner] -= 1
            dead = left[winner] == 0 and not transmit[winner]
            records.append(
                BusRecord(
                    timestamp=end,
                    frame=scheduled.frame,
                    label=scheduled.label,
                    source=scheduled.source,
                    queued_at=release_f[winner],
                    started_at=start,
                    corrupted=True,
                    retries=attempts_total[winner] - 1 - left[winner],
                    bus_off=dead,
                )
            )
            if not dead:
                heapq.heappush(pending, (can_id, end, sequence, winner))
                sequence += 1
        else:
            records.append(
                BusRecord(
                    timestamp=end,
                    frame=scheduled.frame,
                    label=scheduled.label,
                    source=scheduled.source,
                    queued_at=release_f[winner],
                    started_at=start,
                    retries=attempts_total[winner],
                )
            )
        bus_free_at = end
    return records


def bus_load(
    records: "Sequence[BusRecord] | Iterable[BusRecord] | CaptureArray",
    duration: float,
    bitrate: float,
) -> float:
    """Fraction of bus time occupied by the recorded frames.

    Accepts either event-engine :class:`BusRecord` sequences (exact for
    any frame format, one Python CRC pass per record) or a columnar
    :class:`~repro.can.log.CaptureArray` — vectorised over the id/DLC/
    payload columns via :func:`repro.can.fastbus.standard_wire_bits`,
    identical occupancy for the standard data frames captures contain.

    >>> bus_load([], 1.0, 500_000)
    0.0
    """
    if duration <= 0 or bitrate <= 0:
        raise CANError("duration and bitrate must be positive")
    from repro.can.log import CaptureArray

    if isinstance(records, CaptureArray):
        from repro.can.fastbus import standard_wire_bits

        busy_bits = int(
            standard_wire_bits(records.can_ids, records.dlcs, records.payloads).sum()
        )
    else:
        busy_bits = sum(record.frame.bit_length() for record in records)
    return min(busy_bits / (bitrate * duration), 1.0)
