"""Bit-accurate CAN data frame model.

Implements the CAN 2.0 data-frame wire format: identifier fields,
control bits, CRC-15 (polynomial 0x4599), bit stuffing over the stuffed
region (SOF through CRC) and the fixed trailer (CRC delimiter, ACK slot,
EOF, interframe space).  Exact frame lengths matter twice in the paper's
evaluation:

* line-rate/throughput claims — "over 8300 messages per second at
  highest payload capacity" is a function of bits-per-frame at the bus
  bitrate;
* the DoS attack itself — 0x000-ID frames win every arbitration and
  their wire occupancy decides how much legitimate traffic is displaced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CANError
from repro.utils.bitops import bytes_to_bits, int_to_bits, stuff_bits

__all__ = ["CANFrame", "crc15", "MAX_STANDARD_ID", "MAX_EXTENDED_ID"]

MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFFFFFF

_CRC15_POLY = 0x4599

# Fixed (non-stuffed) trailer: CRC delimiter (1) + ACK slot (1) +
# ACK delimiter (1) + EOF (7) + IFS (3).
_TRAILER_BITS = 13


def crc15(bits: np.ndarray) -> int:
    """CAN CRC-15 over a bit sequence (MSB first), polynomial 0x4599.

    >>> crc15(np.zeros(8, dtype=np.uint8))
    0
    """
    crc = 0
    for bit in np.asarray(bits, dtype=np.uint8).tolist():
        crc_next = ((crc >> 14) & 1) ^ bit
        crc = (crc << 1) & 0x7FFF
        if crc_next:
            crc ^= _CRC15_POLY
    return crc


@dataclass(frozen=True)
class CANFrame:
    """An immutable CAN 2.0 data frame.

    Parameters
    ----------
    can_id:
        11-bit (standard) or 29-bit (extended) identifier.  Lower values
        win arbitration.
    data:
        0-8 payload bytes; DLC is derived from the length.
    extended:
        CAN 2.0B 29-bit identifier format.
    rtr:
        Remote transmission request (no payload on the wire).
    """

    can_id: int
    data: bytes = b""
    extended: bool = False
    rtr: bool = False

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise CANError(
                f"CAN id 0x{self.can_id:X} out of range for "
                f"{'extended' if self.extended else 'standard'} frame"
            )
        if len(self.data) > 8:
            raise CANError(f"CAN payload is limited to 8 bytes, got {len(self.data)}")
        if not isinstance(self.data, bytes):
            object.__setattr__(self, "data", bytes(self.data))

    @property
    def dlc(self) -> int:
        """Data length code (payload byte count)."""
        return len(self.data)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def content_bits(self) -> np.ndarray:
        """Bits of the stuffed region (SOF .. CRC), before stuffing."""
        parts: list[np.ndarray] = [np.array([0], dtype=np.uint8)]  # SOF (dominant)
        if self.extended:
            parts.append(int_to_bits(self.can_id >> 18, 11))  # base id
            parts.append(np.array([1, 1], dtype=np.uint8))  # SRR, IDE
            parts.append(int_to_bits(self.can_id & 0x3FFFF, 18))  # extension
            parts.append(np.array([1 if self.rtr else 0, 0, 0], dtype=np.uint8))  # RTR, r1, r0
        else:
            parts.append(int_to_bits(self.can_id, 11))
            parts.append(np.array([1 if self.rtr else 0, 0, 0], dtype=np.uint8))  # RTR, IDE, r0
        parts.append(int_to_bits(self.dlc, 4))
        if not self.rtr and self.data:
            parts.append(bytes_to_bits(self.data))
        body = np.concatenate(parts)
        crc = crc15(body)
        return np.concatenate([body, int_to_bits(crc, 15)])

    def wire_bits(self) -> np.ndarray:
        """Stuffed region bits as transmitted (stuffing applied)."""
        return stuff_bits(self.content_bits())

    def bit_length(self, stuffed: bool = True) -> int:
        """Total bits on the wire, including the fixed trailer and IFS.

        >>> CANFrame(0x0, bytes(8)).bit_length() >= 111
        True
        """
        content = self.wire_bits() if stuffed else self.content_bits()
        return int(content.size) + _TRAILER_BITS

    def duration(self, bitrate: float) -> float:
        """Seconds this frame occupies the bus at ``bitrate`` bits/s."""
        if bitrate <= 0:
            raise CANError(f"bitrate must be positive, got {bitrate}")
        return self.bit_length() / bitrate

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def padded_data(self, length: int = 8, fill: int = 0) -> bytes:
        """Payload padded to ``length`` bytes (feature encoders use this)."""
        return self.data + bytes([fill]) * (length - len(self.data))

    def id_hex(self) -> str:
        """Identifier formatted like the Car-Hacking CSV (4 hex digits)."""
        width = 8 if self.extended else 4
        return f"{self.can_id:0{width}x}"

    def __repr__(self) -> str:
        payload = self.data.hex(" ") if self.data else "-"
        return f"CANFrame(id=0x{self.can_id:03X}, dlc={self.dlc}, data={payload})"


def max_frame_bits(dlc: int = 8, extended: bool = False) -> int:
    """Worst-case stuffed bit count for a frame with ``dlc`` payload bytes.

    The classic worst-case formula for standard frames:
    ``8*dlc + 44 + floor((34 + 8*dlc - 1) / 4)`` plus 3 bits of IFS.
    Used for conservative line-rate calculations.
    """
    if not 0 <= dlc <= 8:
        raise CANError(f"dlc must be in [0, 8], got {dlc}")
    base = 8 * dlc + (64 if extended else 44)
    stuffable = 8 * dlc + (54 if extended else 34)
    return base + (stuffable - 1) // 4 + 3
