"""Attack traffic injectors.

These reproduce the four attack mechanics of the Car-Hacking dataset
(Song, Woo & Kim 2020); the paper trains detectors for the first two:

* **DoS** — inject the dominant identifier ``0x000`` every 0.3 ms.  It
  wins every arbitration round, starving legitimate traffic.
* **Fuzzy** — inject frames with uniformly random identifier and payload
  every 0.5 ms, probing ECU behaviour.
* **Spoofing** (gear/RPM in the original capture) — inject well-formed
  frames of one legitimate identifier with attacker-chosen payloads.
* **Replay** — retransmit previously captured frames.

All injectors are :class:`~repro.can.node.TrafficSource` implementations
restricted to configurable active windows, mirroring how the dataset
alternates attack-free and attack intervals.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.can.frame import CANFrame, MAX_STANDARD_ID
from repro.can.node import ScheduledFrame
from repro.errors import CANError
from repro.utils.rng import new_rng

__all__ = ["DoSAttacker", "FuzzyAttacker", "SpoofingAttacker", "ReplayAttacker"]

Window = tuple[float, float]


class _WindowedInjector:
    """Shared logic: periodic injection inside active windows."""

    def __init__(self, interval: float, windows: Sequence[Window], name: str, seed: int):
        if interval <= 0:
            raise CANError(f"injection interval must be positive, got {interval}")
        for start, end in windows:
            if end <= start:
                raise CANError(f"attack window ({start}, {end}) is empty")
        self.interval = interval
        self.windows = sorted(windows)
        self.name = name
        self._rng = new_rng(seed, f"attacker-{name}")

    def _build_frame(self) -> CANFrame:
        raise NotImplementedError

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        for start, end in self.windows:
            release = start
            while release < min(end, until):
                yield ScheduledFrame(release, self._build_frame(), "T", self.name)
                release += self.interval
            if start >= until:
                break


class DoSAttacker(_WindowedInjector):
    """Flood the bus with the highest-priority identifier.

    Defaults follow the Car-Hacking dataset: ``0x000`` with an 8-byte
    zero payload every 0.3 ms.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        interval: float = 0.0003,
        can_id: int = 0x000,
        payload: bytes = bytes(8),
        seed: int = 0,
    ):
        super().__init__(interval, windows, "dos-attacker", seed)
        self.can_id = can_id
        self.payload = payload

    def _build_frame(self) -> CANFrame:
        return CANFrame(self.can_id, self.payload)


class FuzzyAttacker(_WindowedInjector):
    """Inject frames with uniformly random identifiers and payloads.

    Defaults follow the Car-Hacking dataset: a random frame every
    0.5 ms.  Identifiers are drawn from the full standard range, so a
    fraction of fuzzed frames collides with legitimate identifiers —
    exactly what makes Fuzzy detection harder than DoS in Table I.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        interval: float = 0.0005,
        id_range: tuple[int, int] = (0x000, MAX_STANDARD_ID),
        dlc: int = 8,
        seed: int = 0,
    ):
        super().__init__(interval, windows, "fuzzy-attacker", seed)
        if not 0 <= id_range[0] <= id_range[1] <= MAX_STANDARD_ID:
            raise CANError(f"invalid fuzzing id range {id_range}")
        self.id_range = id_range
        self.dlc = dlc

    def _build_frame(self) -> CANFrame:
        can_id = int(self._rng.integers(self.id_range[0], self.id_range[1] + 1))
        payload = bytes(int(b) for b in self._rng.integers(0, 256, size=self.dlc))
        return CANFrame(can_id, payload)


class SpoofingAttacker(_WindowedInjector):
    """Inject a legitimate identifier with attacker-controlled payloads.

    The original dataset spoofs gear (0x43F) and RPM (0x316) gauges at a
    1 ms cadence.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        target_id: int = 0x316,
        interval: float = 0.001,
        payload_pool: Sequence[bytes] | None = None,
        seed: int = 0,
    ):
        super().__init__(interval, windows, f"spoof-0x{target_id:03X}", seed)
        self.target_id = target_id
        self.payload_pool = list(payload_pool) if payload_pool else [bytes([0xFF, 0x00] * 4)]

    def _build_frame(self) -> CANFrame:
        choice = int(self._rng.integers(0, len(self.payload_pool)))
        return CANFrame(self.target_id, self.payload_pool[choice])


class ReplayAttacker:
    """Replay a previously captured frame sequence inside a window.

    Unlike the windowed injectors, release times come from the capture
    itself (shifted to the window start), preserving original pacing.
    """

    def __init__(self, capture: Sequence[CANFrame], offsets: Sequence[float], window: Window, name: str = "replay-attacker"):
        if len(capture) != len(offsets):
            raise CANError("capture and offsets must have matching lengths")
        if window[1] <= window[0]:
            raise CANError(f"replay window {window} is empty")
        self.capture = list(capture)
        self.offsets = list(offsets)
        self.window = window
        self.name = name

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        start, end = self.window
        for frame, offset in zip(self.capture, self.offsets):
            release = start + offset
            if release >= min(end, until):
                break
            yield ScheduledFrame(release, frame, "T", self.name)
