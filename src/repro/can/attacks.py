"""Attack traffic injectors.

These reproduce the four attack mechanics of the Car-Hacking dataset
(Song, Woo & Kim 2020) plus the masquerade/suspension mechanics the
follow-up IDS literature evaluates against; the paper trains detectors
for the first two:

* **DoS** — inject the dominant identifier ``0x000`` every 0.3 ms.  It
  wins every arbitration round, starving legitimate traffic.
* **Fuzzy** — inject frames with uniformly random identifier and payload
  every 0.5 ms, probing ECU behaviour.
* **Spoofing** (gear/RPM in the original capture) — inject well-formed
  frames of one legitimate identifier with attacker-chosen payloads.
* **Replay** — retransmit previously captured frames.
* **Burst/ramp DoS** — flood profiles beyond the dataset's constant
  cadence: on/off sub-bursts (evading rate-window detectors) and a
  ramp that intensifies across the window.
* **Suspension** — drop or delay a legitimate sender's frames (a
  compromised ECU going silent, or a gateway queuing it maliciously).
* **Masquerade** — suppress the legitimate sender *and* transmit in its
  place at the original cadence, so frame timing stays plausible.

All injectors are :class:`~repro.can.node.TrafficSource` implementations
restricted to configurable active windows, mirroring how the dataset
alternates attack-free and attack intervals.  Injected/tampered frames
carry the ``"T"`` label, so ground truth is attached at the source.

Two families exist: *windowed injectors* (subclasses of
:class:`_WindowedInjector`) synthesise frames of their own, while
*wrappers* (:class:`SuspensionAttacker`, :class:`MasqueradeAttacker`)
transform the stream of a victim source they are constructed around —
the campaign compiler (:mod:`repro.can.campaign`) swaps the victim out
of the bus for the wrapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.can.frame import CANFrame, MAX_STANDARD_ID
from repro.can.node import ScheduledFrame, TrafficSource
from repro.errors import CANError
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.can.fastbus import ScheduleArray
    from repro.can.faults import TargetedFault

__all__ = [
    "BurstDoSAttacker",
    "BusOffAttacker",
    "DEFAULT_SUSPENSION_DELAY",
    "DoSAttacker",
    "FuzzyAttacker",
    "MasqueradeAttacker",
    "RampDoSAttacker",
    "ReplayAttacker",
    "SpoofingAttacker",
    "SuspensionAttacker",
]

Window = tuple[float, float]

#: Default extra latency a delay-mode suspension adds to victim frames.
#: Shared with the campaign compiler's ground-truth slack computation.
DEFAULT_SUSPENSION_DELAY = 0.020


def _validate_windows(windows: Sequence[Window]) -> list[Window]:
    """Check and sort active windows (shared by injectors and wrappers)."""
    for start, end in windows:
        if end <= start:
            raise CANError(f"attack window ({start}, {end}) is empty")
    return sorted(windows)


class _WindowedSource:
    """Shared logic: frame emission restricted to active windows.

    Subclasses implement :meth:`_window_schedule` to emit one window's
    releases as columnar arrays; the base class validates/sorts the
    windows and clips every window at the simulation horizon, so all
    attackers share identical window/clipping semantics and a campaign
    can schedule any of them uniformly.  The scalar :meth:`frames`
    iterator materialises the same arrays — both bus engines consume
    one draw path.
    """

    def __init__(self, windows: Sequence[Window], name: str, seed: int):
        self.windows = _validate_windows(windows)
        self.name = name
        self._rng = new_rng(seed, f"attacker-{name}")

    def _window_schedule(self, start: float, end: float, until: float) -> "ScheduleArray":
        """This window's releases (all ``< min(end, until)``) as columns."""
        raise NotImplementedError

    def frames_array(self, until: float) -> "ScheduleArray":
        """The whole-horizon columnar schedule across active windows."""
        from repro.can.fastbus import ScheduleArray

        parts = [
            self._window_schedule(start, end, until)
            for start, end in self.windows
            if start < until
        ]
        return ScheduleArray.concatenate([part for part in parts if len(part)])

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        yield from self.frames_array(until).scheduled_frames()


class _WindowedInjector(_WindowedSource):
    """Windowed source with a fixed injection cadence."""

    def __init__(self, interval: float, windows: Sequence[Window], name: str, seed: int):
        if interval <= 0:
            raise CANError(f"injection interval must be positive, got {interval}")
        super().__init__(windows, name, seed)
        self.interval = interval

    def _payload_columns(self, releases: np.ndarray) -> tuple:
        """``(can_ids, payloads, dlcs)`` for one window's release grid."""
        raise NotImplementedError

    def _window_schedule(self, start: float, end: float, until: float) -> "ScheduleArray":
        from repro.can import fastbus

        releases = fastbus.release_grid(start, min(end, until), self.interval)
        return self._schedule_for(releases)

    def _schedule_for(self, releases: np.ndarray) -> "ScheduleArray":
        from repro.can import fastbus

        if releases.size == 0:
            return fastbus.ScheduleArray.empty()
        can_ids, payloads, dlcs = self._payload_columns(releases)
        return fastbus.schedule_columns(
            releases, can_ids=can_ids, payloads=payloads, dlcs=dlcs,
            label=1, source=self.name,
        )


class DoSAttacker(_WindowedInjector):
    """Flood the bus with the highest-priority identifier.

    Defaults follow the Car-Hacking dataset: ``0x000`` with an 8-byte
    zero payload every 0.3 ms.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        interval: float = 0.0003,
        can_id: int = 0x000,
        payload: bytes = bytes(8),
        seed: int = 0,
        name: str = "dos-attacker",
    ):
        super().__init__(interval, windows, name, seed)
        self.can_id = can_id
        self.payload = payload

    def _payload_columns(self, releases: np.ndarray) -> tuple:
        row = np.frombuffer(self.payload, dtype=np.uint8)
        payloads = np.broadcast_to(row, (releases.size, row.size)).copy()
        return self.can_id, payloads, None


class BurstDoSAttacker(DoSAttacker):
    """DoS flood chopped into on/off sub-bursts inside each window.

    Models an attacker dosing the bus in short pulses — enough to stall
    arbitration while ducking under rate-per-window heuristics.  Each
    active window alternates ``burst_on`` seconds of flooding at
    ``interval`` cadence with ``burst_off`` seconds of silence.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        burst_on: float = 0.050,
        burst_off: float = 0.050,
        interval: float = 0.0003,
        can_id: int = 0x000,
        payload: bytes = bytes(8),
        seed: int = 0,
        name: str = "burst-dos-attacker",
    ):
        if burst_on <= 0 or burst_off < 0:
            raise CANError(
                f"burst_on must be positive and burst_off non-negative, "
                f"got ({burst_on}, {burst_off})"
            )
        super().__init__(
            windows, interval=interval, can_id=can_id, payload=payload,
            seed=seed, name=name,
        )
        self.burst_on = burst_on
        self.burst_off = burst_off

    def _window_schedule(self, start: float, end: float, until: float) -> "ScheduleArray":
        from repro.can import fastbus

        horizon = min(end, until)
        pulses = []
        cursor = start
        while cursor < horizon:
            burst_end = min(cursor + self.burst_on, horizon)
            pulses.append(fastbus.release_grid(cursor, burst_end, self.interval))
            cursor = cursor + self.burst_on + self.burst_off
        releases = np.concatenate(pulses) if pulses else np.zeros(0, dtype=np.float64)
        return self._schedule_for(releases)


class RampDoSAttacker(DoSAttacker):
    """DoS flood whose cadence ramps across each window.

    The injection interval interpolates linearly from
    ``interval_start`` at the window's opening to ``interval_end`` at
    its close — an attack that starts below detection thresholds and
    intensifies to a full flood (or, reversed, a flood that backs off).
    The ramp is a function of window position, so clipping at the
    simulation horizon never changes the cadence profile.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        interval_start: float = 0.005,
        interval_end: float = 0.0003,
        can_id: int = 0x000,
        payload: bytes = bytes(8),
        seed: int = 0,
        name: str = "ramp-dos-attacker",
    ):
        if interval_start <= 0 or interval_end <= 0:
            raise CANError(
                f"ramp intervals must be positive, got ({interval_start}, {interval_end})"
            )
        super().__init__(
            windows, interval=min(interval_start, interval_end), can_id=can_id,
            payload=payload, seed=seed, name=name,
        )
        self.interval_start = interval_start
        self.interval_end = interval_end

    def _window_schedule(self, start: float, end: float, until: float) -> "ScheduleArray":
        horizon = min(end, until)
        span = end - start
        releases: list[float] = []
        release = start
        # The cadence is a recurrence on the release itself, so the
        # grid is built by the same scalar accumulation the profile
        # defines (counts are small: one entry per injected frame).
        while release < horizon:
            releases.append(release)
            progress = (release - start) / span
            release += self.interval_start + (self.interval_end - self.interval_start) * progress
        return self._schedule_for(np.array(releases, dtype=np.float64))


class FuzzyAttacker(_WindowedInjector):
    """Inject frames with uniformly random identifiers and payloads.

    Defaults follow the Car-Hacking dataset: a random frame every
    0.5 ms.  Identifiers are drawn from the full standard range, so a
    fraction of fuzzed frames collides with legitimate identifiers —
    exactly what makes Fuzzy detection harder than DoS in Table I.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        interval: float = 0.0005,
        id_range: tuple[int, int] = (0x000, MAX_STANDARD_ID),
        dlc: int = 8,
        seed: int = 0,
        name: str = "fuzzy-attacker",
    ):
        super().__init__(interval, windows, name, seed)
        if not 0 <= id_range[0] <= id_range[1] <= MAX_STANDARD_ID:
            raise CANError(f"invalid fuzzing id range {id_range}")
        self.id_range = id_range
        self.dlc = dlc

    def _payload_columns(self, releases: np.ndarray) -> tuple:
        n = releases.size
        can_ids = self._rng.integers(self.id_range[0], self.id_range[1] + 1, size=n)
        payloads = self._rng.integers(0, 256, size=(n, self.dlc)).astype(np.uint8)
        return can_ids.astype(np.int64), payloads, None


class SpoofingAttacker(_WindowedInjector):
    """Inject a legitimate identifier with attacker-controlled payloads.

    The original dataset spoofs gear (0x43F) and RPM (0x316) gauges at a
    1 ms cadence.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        target_id: int = 0x316,
        interval: float = 0.001,
        payload_pool: Sequence[bytes] | None = None,
        seed: int = 0,
        name: str | None = None,
    ):
        super().__init__(interval, windows, name or f"spoof-0x{target_id:03X}", seed)
        self.target_id = target_id
        self.payload_pool = list(payload_pool) if payload_pool else [bytes([0xFF, 0x00] * 4)]
        self._pool_payloads = np.frombuffer(
            b"".join(entry + bytes(8 - len(entry)) for entry in self.payload_pool),
            dtype=np.uint8,
        ).reshape(len(self.payload_pool), 8).copy()
        self._pool_dlcs = np.array([len(entry) for entry in self.payload_pool], dtype=np.int64)

    def _payload_columns(self, releases: np.ndarray) -> tuple:
        choices = self._rng.integers(0, len(self.payload_pool), size=releases.size)
        return self.target_id, self._pool_payloads[choices], self._pool_dlcs[choices]


class ReplayAttacker(_WindowedSource):
    """Replay a previously captured frame sequence inside active windows.

    Unlike the periodic injectors, release times come from the capture
    itself (shifted to each window's start), preserving original pacing;
    frames whose offset overruns a window are clipped at its end.  The
    window/clipping semantics are those of every other windowed injector
    (multiple windows, horizon clipping), so campaigns can schedule a
    replay phase exactly like a flood phase.

    ``windows`` accepts either one ``(start, end)`` pair or a sequence
    of them; the legacy keyword ``window`` remains an alias for a single
    pair.
    """

    def __init__(
        self,
        capture: Sequence[CANFrame],
        offsets: Sequence[float],
        windows: Sequence[Window] | Window | None = None,
        name: str = "replay-attacker",
        seed: int = 0,
        *,
        window: Window | None = None,
    ):
        if len(capture) != len(offsets):
            raise CANError("capture and offsets must have matching lengths")
        if windows is None:
            windows = window
        if windows is None:
            raise CANError("replay attacker needs at least one active window")
        if len(windows) == 2 and not isinstance(windows[0], (tuple, list)):
            windows = [tuple(windows)]  # a bare (start, end) pair
        super().__init__(list(windows), name, seed)
        self.capture = list(capture)
        self.offsets = list(offsets)
        # Columnar view of the replayed capture, built once: replays of
        # long captures cost array slices, not per-frame object churn.
        self._offsets = np.array(self.offsets, dtype=np.float64)
        self._ids = np.array([frame.can_id for frame in self.capture], dtype=np.int64)
        self._dlcs = np.array([frame.dlc for frame in self.capture], dtype=np.int64)
        self._payloads = (
            np.frombuffer(
                b"".join(frame.data + bytes(8 - frame.dlc) for frame in self.capture),
                dtype=np.uint8,
            ).reshape(len(self.capture), 8).copy()
            if self.capture
            else np.zeros((0, 8), dtype=np.uint8)
        )
        self._wire_bits = np.array(
            [
                frame.bit_length() if (frame.extended or frame.rtr) else -1
                for frame in self.capture
            ],
            dtype=np.int64,
        )

    @property
    def window(self) -> Window:
        """The first active window (legacy single-window accessor)."""
        return self.windows[0]

    def _window_schedule(self, start: float, end: float, until: float) -> "ScheduleArray":
        from repro.can.fastbus import ScheduleArray

        horizon = min(end, until)
        releases = start + self._offsets
        # Same clipping as the scalar replay: stop at the *first*
        # overrun, preserving capture order even for unsorted offsets.
        overruns = releases >= horizon
        cut = int(np.argmax(overruns)) if overruns.any() else releases.size
        if cut == 0:
            return ScheduleArray.empty()
        return ScheduleArray(
            release_times=releases[:cut],
            can_ids=self._ids[:cut],
            dlcs=self._dlcs[:cut],
            payloads=self._payloads[:cut],
            labels=np.ones(cut, dtype=np.int64),
            sources=np.full(cut, self.name),  # reprolint: disable=dtype-discipline -- unicode width inferred from the attacker name
            wire_bits=self._wire_bits[:cut],
        )


class BusOffAttacker:
    """Force a victim into bus-off by corrupting its transmissions.

    The Cho–Shin bus-off attack (CCS 2016) synchronises with a victim's
    frame and injects a dominant bit into it, forcing a transmit error:
    the victim's TEC climbs +8 per corrupted attempt and, once every
    transmission errs, marches through error-passive (128) into bus-off
    (256), at which point the ECU falls silent — a suspension attack
    executed purely through the error machinery.

    This source puts **nothing** on the wire itself (the injected
    dominant bit rides inside the victim's own frame); instead it
    exposes :meth:`targeted_faults` — wire-fault hooks the bus engines
    fold into their :class:`~repro.can.faults.WireFaultModel`
    (see :func:`repro.can.faults.resolve_bus_faults`).  With the
    default one corrupted attempt per frame the victim's TEC walks the
    classic +8/−1 sawtooth; larger ``attempts_per_frame`` models an
    attacker re-hitting each retransmission, reaching bus-off within a
    couple of frames.
    """

    def __init__(
        self,
        windows: Sequence[Window],
        target_id: int,
        attempts_per_frame: int = 1,
        seed: int = 0,
        name: str | None = None,
    ):
        if attempts_per_frame < 1:
            raise CANError(
                f"attempts_per_frame must be >= 1, got {attempts_per_frame}"
            )
        self.windows = _validate_windows(windows)
        self.can_id = target_id
        self.attempts_per_frame = attempts_per_frame
        self.seed = seed
        self.name = name or f"bus-off-0x{target_id:03X}"

    def targeted_faults(self) -> "list[TargetedFault]":
        """The corruption hooks this attacker contributes to the bus."""
        from repro.can.faults import TargetedFault

        return [
            TargetedFault(
                start=start,
                end=end,
                attempts=self.attempts_per_frame,
                can_id=self.can_id,
            )
            for start, end in self.windows
        ]

    def frames_array(self, until: float) -> "ScheduleArray":
        from repro.can.fastbus import ScheduleArray

        return ScheduleArray.empty()

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        return iter(())


class SuspensionAttacker:
    """Suppress or delay a legitimate sender's frames inside windows.

    A suspension attack silences a victim ECU — by bus-off-ing it, by
    holding its transmit mailbox, or by a compromised gateway queueing
    its frames.  This wrapper transforms the ``victim`` source's
    stream: inside each active window, matching frames are either
    dropped (``mode="drop"``; nothing appears on the wire) or delayed
    by ``delay`` seconds (``mode="delay"``; the late frames are
    tampered traffic and carry the ``"T"`` label).  Frames of other
    identifiers — and the victim's frames outside the windows — pass
    through untouched, in their original order.

    The campaign compiler replaces the victim on the bus with this
    wrapper, so the bus sees exactly one copy of the victim's traffic.
    """

    MODES = ("drop", "delay")

    def __init__(
        self,
        victim: TrafficSource,
        windows: Sequence[Window],
        mode: str = "drop",
        delay: float = DEFAULT_SUSPENSION_DELAY,
        target_id: int | None = None,
        name: str | None = None,
    ):
        if mode not in self.MODES:
            raise CANError(f"unknown suspension mode {mode!r}; choose from {self.MODES}")
        if mode == "delay" and delay <= 0:
            raise CANError(f"suspension delay must be positive, got {delay}")
        self.victim = victim
        self.windows = _validate_windows(windows)
        self.mode = mode
        self.delay = delay
        #: identifier the attack applies to (None = every victim frame);
        #: exposed as ``can_id`` so wrappers stack like plain senders.
        self.can_id = target_id if target_id is not None else getattr(victim, "can_id", None)
        self.name = name or f"suspension-{mode}"

    def _active(self, release_time: float) -> bool:
        return any(start <= release_time < end for start, end in self.windows)

    def frames_array(self, until: float) -> "ScheduleArray":
        """Columnar transform of the victim's schedule (drop or delay).

        The victim's columns come from its own ``frames_array`` (or the
        scalar fallback), masks select the targeted in-window frames,
        and the stable release re-sort reproduces the scalar path's
        ordering exactly.
        """
        from repro.can import fastbus

        schedule = fastbus.source_schedule(self.victim, until)
        releases = schedule.release_times
        hit = np.zeros(len(schedule), dtype=bool)
        for start, end in self.windows:
            hit |= (releases >= start) & (releases < end)
        if self.can_id is not None:
            hit &= schedule.can_ids == self.can_id
        if self.mode == "drop":
            return schedule.take(np.flatnonzero(~hit)).sorted_by_release()
        shifted = releases.copy()
        shifted[hit] = releases[hit] + self.delay
        labels = schedule.labels.copy()
        labels[hit] = 1
        sources = schedule.sources.astype(object)
        sources[hit] = self.name
        tampered = fastbus.ScheduleArray(
            release_times=shifted,
            can_ids=schedule.can_ids,
            dlcs=schedule.dlcs,
            payloads=schedule.payloads,
            labels=labels,
            sources=sources.astype(str),
            wire_bits=schedule.wire_bits,
        )
        keep = ~(hit & (shifted >= until))
        return tampered.take(np.flatnonzero(keep)).sorted_by_release()

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        out: list[ScheduledFrame] = []
        for scheduled in self.victim.frames(until):
            targeted = self.can_id is None or scheduled.frame.can_id == self.can_id
            if not (targeted and self._active(scheduled.release_time)):
                out.append(scheduled)
                continue
            if self.mode == "drop":
                continue
            release = scheduled.release_time + self.delay
            if release >= until:
                continue
            out.append(ScheduledFrame(release, scheduled.frame, "T", self.name))
        # A constant delay preserves the victim's own ordering, but a
        # delayed frame can land between two pass-through releases, so
        # restore global release order for the TrafficSource contract.
        out.sort(key=lambda s: s.release_time)
        yield from out


class MasqueradeAttacker:
    """Suppress the legitimate sender and transmit in its place.

    The masquerade attack is spoofing done carefully: the victim ECU is
    silenced (as in a drop-mode suspension) and the attacker transmits
    the victim's identifier *at its original cadence*, so frequency- and
    inter-arrival-based detectors see nothing unusual — only payload
    inspection can tell.  Inside each window, the wrapper filters the
    victim's frames out and injects spoofed frames every ``interval``
    seconds (default: the victim's nominal period) with payloads drawn
    from ``payload_pool``.
    """

    def __init__(
        self,
        victim: TrafficSource,
        windows: Sequence[Window],
        interval: float | None = None,
        payload_pool: Sequence[bytes] | None = None,
        target_id: int | None = None,
        seed: int = 0,
        name: str | None = None,
    ):
        target = target_id if target_id is not None else getattr(victim, "can_id", None)
        if target is None:
            raise CANError("masquerade needs a target_id (victim has no can_id attribute)")
        cadence = interval if interval is not None else getattr(victim, "period", None)
        if cadence is None:
            raise CANError("masquerade needs an interval (victim has no period attribute)")
        self.can_id = target
        self.name = name or f"masquerade-0x{target:03X}"
        self._suppressor = SuspensionAttacker(
            victim, windows, mode="drop", target_id=target, name=self.name
        )
        self._injector = SpoofingAttacker(
            windows,
            target_id=target,
            interval=cadence,
            payload_pool=payload_pool,
            seed=seed,
            name=self.name,
        )
        self.windows = self._suppressor.windows
        self.interval = cadence

    def frames_array(self, until: float) -> "ScheduleArray":
        from repro.can.fastbus import ScheduleArray

        merged = ScheduleArray.concatenate(
            [
                part
                for part in (
                    self._suppressor.frames_array(until),
                    self._injector.frames_array(until),
                )
                if len(part)
            ]
        )
        return merged.sorted_by_release()

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        merged = list(self._suppressor.frames(until)) + list(self._injector.frames(until))
        merged.sort(key=lambda s: s.release_time)
        yield from merged
