"""Traffic sources: the ECUs that populate a CAN bus.

A :class:`TrafficSource` yields :class:`ScheduledFrame` release events;
the bus simulator merges all sources and resolves arbitration.  The
periodic sender models the dominant pattern of real in-vehicle traffic:
fixed-period broadcast of sensor/actuator state with small clock jitter
and slowly evolving payloads (counters, ramping sensor readings,
constant config bytes) — the structure the Car-Hacking dataset exhibits
and the structure fuzzing attacks violate.

Sources are *columnar-first*: :meth:`PeriodicSender.frames_array`
emits a whole-horizon :class:`~repro.can.fastbus.ScheduleArray` in a
handful of numpy calls (the release grid and jitter come from one RNG
draw; payload models expose a vectorised ``batch`` hook), and the
scalar :meth:`PeriodicSender.frames` iterator is materialised from it.
Both the event-driven reference bus and the columnar arbitration
kernel therefore consume the *same* draws — equivalence between the
engines is by construction, not by coincidence of draw ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Protocol

import numpy as np

from repro.can.frame import CANFrame
from repro.errors import CANError
from repro.utils.rng import new_rng

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.can.fastbus import ScheduleArray

__all__ = [
    "ScheduledFrame",
    "TrafficSource",
    "PeriodicSender",
    "counter_payload",
    "sensor_payload",
    "constant_payload",
    "payload_batch",
]


@dataclass(frozen=True)
class ScheduledFrame:
    """A frame released for transmission at ``release_time`` seconds."""

    release_time: float
    frame: CANFrame
    label: str  # "R" (regular) or "T" (attack/injected)
    source: str  # node name, for diagnostics


class TrafficSource(Protocol):
    """Anything that can enumerate its frame releases up to a horizon."""

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        """Yield scheduled frames with ``release_time < until``, in order."""
        ...


PayloadModel = Callable[[int, np.random.Generator], bytes]

#: Vectorised payload hook: ``model.batch(sequences, rng)`` returns the
#: ``(N, dlc)`` uint8 payload block for N consecutive transmissions,
#: advancing any internal state exactly as N scalar calls would.
PayloadBatch = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def counter_payload(dlc: int = 8, counter_byte: int = 0) -> PayloadModel:
    """Payload with a wrapping message counter in one byte, zeros elsewhere.

    Many real ECUs embed an alive-counter; its regular increment is a
    strong normality signal.
    """

    def model(sequence: int, _rng: np.random.Generator) -> bytes:
        payload = bytearray(dlc)
        payload[counter_byte] = sequence & 0xFF
        return bytes(payload)

    def batch(sequences: np.ndarray, _rng: np.random.Generator) -> np.ndarray:
        payloads = np.zeros((len(sequences), dlc), dtype=np.uint8)
        payloads[:, counter_byte] = (np.asarray(sequences) & 0xFF).astype(np.uint8)
        return payloads

    model.batch = batch
    return model


def sensor_payload(dlc: int = 8, active_bytes: int = 2, walk_step: int = 3, seed: int = 0) -> PayloadModel:
    """Random-walk sensor value in the first bytes, constants elsewhere.

    Models wheel speeds, RPM, temperatures: values drift smoothly rather
    than jumping, unlike fuzzed payloads.
    """
    state = {"value": None}

    def _ensure_state() -> None:
        if state["value"] is None:
            init_rng = new_rng(seed, "sensor-init")
            state["value"] = [int(init_rng.integers(0, 256)) for _ in range(active_bytes)]
            state["constants"] = [int(init_rng.integers(0, 256)) for _ in range(dlc - active_bytes)]

    def model(sequence: int, rng: np.random.Generator) -> bytes:
        _ensure_state()
        values = state["value"]
        for i in range(active_bytes):
            step = int(rng.integers(-walk_step, walk_step + 1))
            values[i] = int(np.clip(values[i] + step, 0, 255))
        return bytes(values) + bytes(state["constants"])

    def batch(sequences: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _ensure_state()
        n = len(sequences)
        steps = rng.integers(-walk_step, walk_step + 1, size=(n, active_bytes))
        payloads = np.empty((n, dlc), dtype=np.uint8)
        values = state["value"]
        # The walk saturates at the byte range, so each column is a
        # clipped running sum — sequential by nature, but over plain
        # ints drawn in one RNG call it stays cheap.
        for column in range(active_bytes):
            value = values[column]
            walked = []
            for step in steps[:, column].tolist():
                value += step
                if value < 0:
                    value = 0
                elif value > 255:
                    value = 255
                walked.append(value)
            payloads[:, column] = walked
            values[column] = value
        payloads[:, active_bytes:] = np.array(state["constants"], dtype=np.uint8)
        return payloads

    model.batch = batch
    return model


def constant_payload(data: bytes) -> PayloadModel:
    """Fixed payload (status words, configuration echoes)."""

    def model(_sequence: int, _rng: np.random.Generator) -> bytes:
        return data

    def batch(sequences: np.ndarray, _rng: np.random.Generator) -> np.ndarray:
        row = np.frombuffer(data, dtype=np.uint8)
        return np.broadcast_to(row, (len(sequences), row.size)).copy()

    model.batch = batch
    return model


def payload_batch(
    model: PayloadModel, sequences: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``(payloads (N, 8) uint8, dlcs (N,))`` for N transmissions.

    Uses the model's vectorised ``batch`` hook when present; models
    without one (user-supplied callables) fall back to one scalar call
    per frame, preserving per-frame variable payload lengths.
    """
    batch = getattr(model, "batch", None)
    if batch is not None:
        block = np.asarray(batch(sequences, rng), dtype=np.uint8)
        padded = np.zeros((block.shape[0], 8), dtype=np.uint8)
        padded[:, : block.shape[1]] = block
        return padded, np.full(block.shape[0], block.shape[1], dtype=np.int64)
    rows = [model(int(sequence), rng) for sequence in sequences]
    dlcs = np.array([len(row) for row in rows], dtype=np.int64)
    packed = b"".join(row + bytes(8 - len(row)) for row in rows)
    payloads = np.frombuffer(packed, dtype=np.uint8).reshape(len(rows), 8).copy()
    return payloads, dlcs


class PeriodicSender:
    """An ECU broadcasting one CAN identifier at a fixed period.

    Parameters
    ----------
    can_id:
        Identifier to transmit.
    period:
        Nominal seconds between releases (real IDs range ~10 ms-1 s).
    payload_model:
        Callable producing the payload for the n-th transmission.
    jitter:
        Uniform release jitter as a fraction of the period (scheduling
        noise of the sending ECU).
    phase:
        Release offset of the first frame; randomised from the seed when
        None so senders don't start in lockstep.
    """

    def __init__(
        self,
        can_id: int,
        period: float,
        payload_model: PayloadModel | None = None,
        jitter: float = 0.02,
        phase: float | None = None,
        name: str | None = None,
        seed: int = 0,
    ):
        if period <= 0:
            raise CANError(f"period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise CANError(f"jitter fraction must be in [0, 1), got {jitter}")
        self.can_id = can_id
        self.period = period
        self.jitter = jitter
        self.payload_model = payload_model or counter_payload()
        self.name = name or f"ecu-0x{can_id:03X}"
        self._rng = new_rng(seed, f"sender-{can_id}-{period}")
        self.phase = float(self._rng.uniform(0, period)) if phase is None else phase

    def frames_array(self, until: float) -> "ScheduleArray":
        """This sender's whole-horizon schedule as columnar arrays.

        The nominal grid, the jitter draw (one RNG call for every
        release) and the payload block (the model's ``batch`` hook) are
        all vectorised; :meth:`frames` materialises the same arrays, so
        both engines see identical releases and payloads.
        """
        from repro.can import fastbus

        nominal = fastbus.release_grid(self.phase, until, self.period)
        n = nominal.size
        if n == 0:
            return fastbus.ScheduleArray.empty()
        if self.jitter:
            offsets = self._rng.uniform(-self.jitter, self.jitter, size=n) * self.period
            releases = np.maximum(nominal + offsets, 0.0)
        else:
            releases = nominal
        payloads, dlcs = payload_batch(
            self.payload_model, np.arange(n, dtype=np.int64), self._rng
        )
        return fastbus.schedule_columns(
            releases,
            can_ids=self.can_id,
            payloads=payloads,
            dlcs=dlcs,
            label=0,
            source=self.name,
        )

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        yield from self.frames_array(until).scheduled_frames()
