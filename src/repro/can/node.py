"""Traffic sources: the ECUs that populate a CAN bus.

A :class:`TrafficSource` yields :class:`ScheduledFrame` release events;
the bus simulator merges all sources and resolves arbitration.  The
periodic sender models the dominant pattern of real in-vehicle traffic:
fixed-period broadcast of sensor/actuator state with small clock jitter
and slowly evolving payloads (counters, ramping sensor readings,
constant config bytes) — the structure the Car-Hacking dataset exhibits
and the structure fuzzing attacks violate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.can.frame import CANFrame
from repro.errors import CANError
from repro.utils.rng import new_rng

__all__ = [
    "ScheduledFrame",
    "TrafficSource",
    "PeriodicSender",
    "counter_payload",
    "sensor_payload",
    "constant_payload",
]


@dataclass(frozen=True)
class ScheduledFrame:
    """A frame released for transmission at ``release_time`` seconds."""

    release_time: float
    frame: CANFrame
    label: str  # "R" (regular) or "T" (attack/injected)
    source: str  # node name, for diagnostics


class TrafficSource(Protocol):
    """Anything that can enumerate its frame releases up to a horizon."""

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        """Yield scheduled frames with ``release_time < until``, in order."""
        ...


PayloadModel = Callable[[int, np.random.Generator], bytes]


def counter_payload(dlc: int = 8, counter_byte: int = 0) -> PayloadModel:
    """Payload with a wrapping message counter in one byte, zeros elsewhere.

    Many real ECUs embed an alive-counter; its regular increment is a
    strong normality signal.
    """

    def model(sequence: int, _rng: np.random.Generator) -> bytes:
        payload = bytearray(dlc)
        payload[counter_byte] = sequence & 0xFF
        return bytes(payload)

    return model


def sensor_payload(dlc: int = 8, active_bytes: int = 2, walk_step: int = 3, seed: int = 0) -> PayloadModel:
    """Random-walk sensor value in the first bytes, constants elsewhere.

    Models wheel speeds, RPM, temperatures: values drift smoothly rather
    than jumping, unlike fuzzed payloads.
    """
    state = {"value": None}

    def model(sequence: int, rng: np.random.Generator) -> bytes:
        if state["value"] is None:
            init_rng = new_rng(seed, "sensor-init")
            state["value"] = [int(init_rng.integers(0, 256)) for _ in range(active_bytes)]
            state["constants"] = [int(init_rng.integers(0, 256)) for _ in range(dlc - active_bytes)]
        values = state["value"]
        for i in range(active_bytes):
            step = int(rng.integers(-walk_step, walk_step + 1))
            values[i] = int(np.clip(values[i] + step, 0, 255))
        return bytes(values) + bytes(state["constants"])

    return model


def constant_payload(data: bytes) -> PayloadModel:
    """Fixed payload (status words, configuration echoes)."""

    def model(_sequence: int, _rng: np.random.Generator) -> bytes:
        return data

    return model


class PeriodicSender:
    """An ECU broadcasting one CAN identifier at a fixed period.

    Parameters
    ----------
    can_id:
        Identifier to transmit.
    period:
        Nominal seconds between releases (real IDs range ~10 ms-1 s).
    payload_model:
        Callable producing the payload for the n-th transmission.
    jitter:
        Uniform release jitter as a fraction of the period (scheduling
        noise of the sending ECU).
    phase:
        Release offset of the first frame; randomised from the seed when
        None so senders don't start in lockstep.
    """

    def __init__(
        self,
        can_id: int,
        period: float,
        payload_model: PayloadModel | None = None,
        jitter: float = 0.02,
        phase: float | None = None,
        name: str | None = None,
        seed: int = 0,
    ):
        if period <= 0:
            raise CANError(f"period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise CANError(f"jitter fraction must be in [0, 1), got {jitter}")
        self.can_id = can_id
        self.period = period
        self.jitter = jitter
        self.payload_model = payload_model or counter_payload()
        self.name = name or f"ecu-0x{can_id:03X}"
        self._rng = new_rng(seed, f"sender-{can_id}-{period}")
        self.phase = float(self._rng.uniform(0, period)) if phase is None else phase

    def frames(self, until: float) -> Iterator[ScheduledFrame]:
        sequence = 0
        release = self.phase
        while release < until:
            jittered = release
            if self.jitter:
                jittered += float(self._rng.uniform(-self.jitter, self.jitter)) * self.period
                jittered = max(jittered, 0.0)
            payload = self.payload_model(sequence, self._rng)
            frame = CANFrame(self.can_id, payload)
            yield ScheduledFrame(jittered, frame, "R", self.name)
            sequence += 1
            release += self.period
