"""PE/SIMD folding selection (FINN's parallelisation knobs).

Every matrix-vector unit processes its ``MH x MW`` weight matrix with
``PE`` output-channel lanes and ``SIMD`` input lanes; one input vector
takes ``(MH/PE) * (MW/SIMD)`` cycles.  Folding trades resources for
throughput: fully parallel (PE=MH, SIMD=MW) needs one cycle per sample
and a multiplier per weight; fully folded (PE=SIMD=1) needs MH*MW
cycles and one multiplier.

``fold_for_target`` reproduces FINN's ``SetFolding`` behaviour: find the
cheapest folding whose slowest layer still meets the requested
frames-per-second at the given clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError, ResourceError
from repro.finn.graph import DataflowGraph, MatMulIntNode

__all__ = ["FoldingConfig", "fold_for_target", "max_parallel_folding", "divisors"]


def divisors(value: int) -> list[int]:
    """Ascending divisors of ``value``.

    >>> divisors(12)
    [1, 2, 3, 4, 6, 12]
    """
    if value < 1:
        raise CompileError(f"divisors of non-positive value {value}")
    small, large = [], []
    step = 1
    while step * step <= value:
        if value % step == 0:
            small.append(step)
            if step != value // step:
                large.append(value // step)
        step += 1
    return small + large[::-1]


@dataclass
class FoldingConfig:
    """Per-matmul (PE, SIMD) assignment, in pipeline order."""

    pe: list[int] = field(default_factory=list)
    simd: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pe)

    def cycles(self, matmuls: list[MatMulIntNode]) -> list[int]:
        """Cycles per sample for each matmul under this folding."""
        if len(matmuls) != len(self):
            raise CompileError(
                f"folding has {len(self)} entries for {len(matmuls)} matmul layers"
            )
        out = []
        for node, pe, simd in zip(matmuls, self.pe, self.simd):
            if node.out_features % pe or node.in_features % simd:
                raise CompileError(
                    f"{node.name}: PE={pe}/SIMD={simd} do not divide "
                    f"{node.out_features}x{node.in_features}"
                )
            out.append((node.out_features // pe) * (node.in_features // simd))
        return out

    def max_cycles(self, matmuls: list[MatMulIntNode]) -> int:
        """Initiation interval of the whole pipeline (slowest stage)."""
        return max(self.cycles(matmuls))

    def to_dict(self) -> dict:
        return {"pe": list(self.pe), "simd": list(self.simd)}


def max_parallel_folding(graph: DataflowGraph) -> FoldingConfig:
    """Fully parallel folding: one cycle per sample per layer."""
    matmuls = graph.nodes_of_type(MatMulIntNode)
    return FoldingConfig(
        pe=[node.out_features for node in matmuls],
        simd=[node.in_features for node in matmuls],
    )


def fold_for_target(
    graph: DataflowGraph,
    target_fps: float,
    clock_hz: float = 100e6,
) -> FoldingConfig:
    """Cheapest folding meeting ``target_fps`` at ``clock_hz``.

    For each layer independently, pick the (PE, SIMD) pair with the
    smallest PE*SIMD product (fewest MAC lanes) whose cycle count fits
    the budget ``floor(clock / target_fps)``; ties prefer higher SIMD
    (cheaper than PE in the MVAU datapath: wider weight words, shallower
    output interleaving).

    Raises :class:`ResourceError` if even fully parallel execution
    cannot reach the target.
    """
    if target_fps <= 0 or clock_hz <= 0:
        raise CompileError("target_fps and clock_hz must be positive")
    budget = int(clock_hz / target_fps)
    if budget < 1:
        raise ResourceError(
            f"target {target_fps:g} fps exceeds the clock ({clock_hz:g} Hz): "
            "even one cycle per sample is too slow"
        )
    config = FoldingConfig()
    for node in graph.nodes_of_type(MatMulIntNode):
        best: tuple[int, int, int] | None = None  # (cost, pe, simd)
        for pe in divisors(node.out_features):
            rows = node.out_features // pe
            for simd in divisors(node.in_features):
                cycles = rows * (node.in_features // simd)
                if cycles > budget:
                    continue
                cost = pe * simd
                candidate = (cost, pe, simd)
                if best is None or cost < best[0] or (cost == best[0] and simd > best[2]):
                    best = candidate
                break  # divisors ascend: first simd meeting budget is cheapest for this pe
        if best is None:
            raise ResourceError(
                f"{node.name} ({node.out_features}x{node.in_features}) cannot reach "
                f"{target_fps:g} fps at {clock_hz / 1e6:g} MHz even fully parallel"
            )
        config.pe.append(best[1])
        config.simd.append(best[2])
    return config
