"""FINN-style dataflow compiler — the library's FINN substitute.

The paper compiles its Brevitas-trained MLP with AMD/Xilinx FINN into a
streaming FPGA IP ("streaming layer optimisations and partitioning were
chosen during FINN compilation flow").  This package reproduces that
flow end to end:

1. :mod:`~repro.finn.build` — lower a trained
   :class:`~repro.quant.export.QNNExport` into a frontend dataflow graph
   (integer MatMul + float bias/activation-quant nodes).
2. :mod:`~repro.finn.streamline` — FINN's streamlining: absorb scales
   and biases into integer **MultiThreshold** nodes
   (:mod:`~repro.finn.thresholds` does the exact integer conversion).
3. :mod:`~repro.finn.folding` — PE/SIMD parallelism selection per layer
   to hit a target throughput.
4. :mod:`~repro.finn.hls_layers` / :mod:`~repro.finn.resources` — map to
   Matrix-Vector-Activation Units and estimate LUT/FF/BRAM/DSP with
   FINN-R-style analytical cost models.
5. :mod:`~repro.finn.cyclesim` — transaction-level cycle-accurate
   simulation of the streaming pipeline (initiation intervals, FIFO
   back-pressure, per-sample latency).
6. :mod:`~repro.finn.verify` — prove the compiled IP is **bit-exact**
   against the trained QAT model.
7. :mod:`~repro.finn.ipgen` — package everything as an
   :class:`~repro.finn.ipgen.AcceleratorIP` with an AXI register map the
   SoC driver can bind to.

``compile_model`` is the one-call facade mirroring FINN's build flow.
"""

from repro.finn.build import build_frontend_graph
from repro.finn.compiled import CompiledEngine, compile_engine, engine_cache_info, engine_for
from repro.finn.cyclesim import CycleSimulator, SimReport
from repro.finn.folding import FoldingConfig, fold_for_target, max_parallel_folding
from repro.finn.graph import DataflowGraph
from repro.finn.hls_layers import MVAU, StreamingFIFO, to_hw_pipeline
from repro.finn.ipgen import AcceleratorIP, compile_model
from repro.finn.resources import ResourceEstimate
from repro.finn.streamline import streamline
from repro.finn.thresholds import compute_thresholds
from repro.finn.verify import verify_bit_exact

__all__ = [
    "MVAU",
    "AcceleratorIP",
    "CompiledEngine",
    "CycleSimulator",
    "DataflowGraph",
    "FoldingConfig",
    "ResourceEstimate",
    "SimReport",
    "StreamingFIFO",
    "build_frontend_graph",
    "compile_engine",
    "compile_model",
    "compute_thresholds",
    "engine_cache_info",
    "engine_for",
    "fold_for_target",
    "max_parallel_folding",
    "streamline",
    "to_hw_pipeline",
    "verify_bit_exact",
]
