"""Transaction-level cycle-accurate simulation of the dataflow pipeline.

Each hardware stage is characterised by its initiation interval (II,
cycles between samples) and pipeline latency; the simulator propagates
per-sample timestamps through the stage chain, exactly like FINN's
rtlsim-based performance validation but at transaction granularity:

* single-sample latency = when sample 0 leaves the last stage;
* steady-state throughput = clock / max(II);
* FIFO depths = maximum observed inter-stage occupancy (this is how
  the compiler sizes the real FIFOs — FINN derives them from RTL
  simulation the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompileError
from repro.finn.hls_layers import HWPipeline

__all__ = ["SimReport", "CycleSimulator"]


@dataclass
class SimReport:
    """Results of one cycle simulation run."""

    num_samples: int
    clock_hz: float
    latency_cycles: int
    steady_ii: int
    total_cycles: int
    stage_names: list[str] = field(default_factory=list)
    stage_iis: list[int] = field(default_factory=list)
    stage_latencies: list[int] = field(default_factory=list)
    fifo_occupancy: list[int] = field(default_factory=list)
    output_times_cycles: np.ndarray | None = None

    @property
    def latency_seconds(self) -> float:
        return self.latency_cycles / self.clock_hz

    @property
    def throughput_fps(self) -> float:
        """Steady-state samples/second (gated by the slowest stage)."""
        return self.clock_hz / self.steady_ii

    @property
    def measured_fps(self) -> float:
        """End-to-end rate of this run (includes pipeline fill)."""
        return self.num_samples / (self.total_cycles / self.clock_hz)

    def bottleneck(self) -> str:
        """Name of the stage limiting throughput."""
        index = int(np.argmax(self.stage_iis))
        return self.stage_names[index]

    def to_dict(self) -> dict:
        return {
            "num_samples": self.num_samples,
            "clock_hz": self.clock_hz,
            "latency_cycles": self.latency_cycles,
            "latency_seconds": self.latency_seconds,
            "steady_ii": self.steady_ii,
            "throughput_fps": self.throughput_fps,
            "stages": [
                {"name": n, "ii": i, "latency": l}
                for n, i, l in zip(self.stage_names, self.stage_iis, self.stage_latencies)
            ],
            "fifo_occupancy": list(self.fifo_occupancy),
        }


class CycleSimulator:
    """Simulate a :class:`~repro.finn.hls_layers.HWPipeline` over time."""

    def __init__(self, pipeline: HWPipeline, clock_hz: float = 100e6):
        if not pipeline.stages:
            raise CompileError("cannot simulate an empty pipeline")
        if clock_hz <= 0:
            raise CompileError(f"clock must be positive, got {clock_hz}")
        self.pipeline = pipeline
        self.clock_hz = float(clock_hz)

    def simulate(
        self,
        num_samples: int,
        arrival_cycles: np.ndarray | None = None,
    ) -> SimReport:
        """Push ``num_samples`` through the pipeline.

        Parameters
        ----------
        arrival_cycles:
            Cycle timestamps at which samples arrive; back-to-back
            (every sample ready at cycle 0) when omitted — the standard
            max-throughput measurement.
        """
        if num_samples < 1:
            raise CompileError("num_samples must be >= 1")
        stages = self.pipeline.stages
        if arrival_cycles is None:
            arrivals = np.zeros(num_samples, dtype=np.int64)
        else:
            arrivals = np.asarray(arrival_cycles, dtype=np.int64)
            if arrivals.shape != (num_samples,):
                raise CompileError("arrival_cycles must have shape (num_samples,)")
            if np.any(np.diff(arrivals) < 0):
                raise CompileError("arrival_cycles must be non-decreasing")

        available = arrivals.astype(np.int64)
        start_times: list[np.ndarray] = []
        for stage in stages:
            ii = stage.initiation_interval
            latency = stage.latency_cycles
            starts = np.empty(num_samples, dtype=np.int64)
            previous_start = -(10**12)
            for n in range(num_samples):
                starts[n] = max(int(available[n]), previous_start + ii)
                previous_start = starts[n]
            start_times.append(starts)
            available = starts + latency  # outputs feed the next stage

        outputs = available  # completion times at the last stage
        # FIFO occupancy between stage i and i+1: samples produced by i
        # but not yet consumed (started) by i+1.
        occupancies: list[int] = []
        for i in range(len(stages) - 1):
            produced = start_times[i] + stages[i].latency_cycles
            consumed = start_times[i + 1]
            max_occ = 0
            for n in range(num_samples):
                # How many samples <= n are still waiting when sample n is produced?
                waiting = int(np.sum((produced[: n + 1] <= produced[n]) & (consumed[: n + 1] > produced[n])))
                max_occ = max(max_occ, waiting)
            occupancies.append(max_occ)

        return SimReport(
            num_samples=num_samples,
            clock_hz=self.clock_hz,
            latency_cycles=int(outputs[0] - arrivals[0]),
            steady_ii=self.pipeline.initiation_interval,
            total_cycles=int(outputs[-1]),
            stage_names=[getattr(s, "name", type(s).__name__) for s in stages],
            stage_iis=[s.initiation_interval for s in stages],
            stage_latencies=[s.latency_cycles for s in stages],
            fifo_occupancy=occupancies,
            output_times_cycles=outputs,
        )

    def size_fifos(self, num_samples: int = 32) -> None:
        """Set FIFO depths from observed occupancy (minimum depth 2)."""
        report = self.simulate(num_samples)
        for fifo, occupancy in zip(self.pipeline.fifos, report.fifo_occupancy):
            fifo.depth = max(int(occupancy) + 1, 2)
