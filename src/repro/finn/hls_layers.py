"""Hardware layer models: MVAUs, FIFOs and the post-processing unit.

``to_hw_pipeline`` maps a streamlined dataflow graph plus a folding
config onto the hardware units FINN generates:

* :class:`MVAU` — Matrix-Vector-Activation Unit: the folded integer
  matmul, optionally fused with its MultiThreshold activation.
* :class:`StreamingFIFO` — inter-layer elastic buffers; depths are
  later sized from cycle simulation (as FINN does from RTL sim).
* :class:`PostProc` — the final ScaleBias + ArgMax stage (fixed-point
  logit de-quantisation and LabelSelect).

Every unit knows its initiation interval (cycles between samples), its
pipeline latency (cycles from first input beat to first output beat)
and its resource estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.finn.folding import FoldingConfig
from repro.finn.graph import (
    ArgMaxNode,
    DataflowGraph,
    MatMulIntNode,
    MultiThresholdNode,
    PadNode,
    ScaleBiasNode,
)
from repro.finn.resources import (
    LUT_LAYER_CONTROL,
    FF_PER_LUT,
    ResourceEstimate,
    mac_luts,
    threshold_luts,
    uses_dsp,
    weight_storage,
)

__all__ = ["MVAU", "StreamingFIFO", "PostProc", "HWPipeline", "to_hw_pipeline"]


@dataclass
class MVAU:
    """A folded Matrix-Vector-Activation Unit."""

    name: str
    in_features: int
    out_features: int
    pe: int
    simd: int
    weight_bits: int
    input_bits: int
    acc_bits: int
    act_bits: int | None  # None: raw accumulators stream out (final layer)
    threshold_steps: int = 0

    def __post_init__(self) -> None:
        if self.out_features % self.pe:
            raise CompileError(f"{self.name}: PE {self.pe} !| MH {self.out_features}")
        if self.in_features % self.simd:
            raise CompileError(f"{self.name}: SIMD {self.simd} !| MW {self.in_features}")

    # -- timing --------------------------------------------------------
    @property
    def initiation_interval(self) -> int:
        """Cycles between successive input samples."""
        return (self.out_features // self.pe) * (self.in_features // self.simd)

    @property
    def pipeline_depth(self) -> int:
        """Cycles from first input beat to first output beat."""
        adder_tree = max(int(math.ceil(math.log2(max(self.simd, 2)))), 1)
        return adder_tree + 4  # operand fetch, MAC, threshold, output register

    @property
    def latency_cycles(self) -> int:
        return self.initiation_interval + self.pipeline_depth

    # -- memory ---------------------------------------------------------
    @property
    def weight_mem_bits(self) -> int:
        return self.in_features * self.out_features * self.weight_bits

    @property
    def threshold_mem_bits(self) -> int:
        return self.out_features * self.threshold_steps * self.acc_bits

    # -- resources ------------------------------------------------------
    def resources(self) -> ResourceEstimate:
        """FINN-style analytical estimate for this unit."""
        dsp = float(self.pe * self.simd) if uses_dsp(self.weight_bits, self.input_bits) else 0.0
        lut = 0.0 if dsp else mac_luts(self.pe, self.simd, self.weight_bits, self.input_bits, self.acc_bits)
        if dsp:
            # DSP-mapped MACs still need the adder tree glue.
            lut += self.pe * self.acc_bits
        lutram, bram = weight_storage(self.weight_mem_bits)
        lut += lutram
        if self.threshold_steps:
            lut += threshold_luts(self.pe, self.threshold_steps, self.acc_bits)
            thr_lutram, thr_bram = weight_storage(self.threshold_mem_bits)
            lut += thr_lutram
            bram += thr_bram
        lut += LUT_LAYER_CONTROL
        return ResourceEstimate(lut=lut, ff=lut * FF_PER_LUT, bram36=bram, dsp=dsp)

    def describe(self) -> str:
        act = f"UINT{self.act_bits}" if self.act_bits else f"INT{self.acc_bits} (raw)"
        return (
            f"{self.name}: {self.out_features}x{self.in_features} "
            f"PE={self.pe} SIMD={self.simd} W{self.weight_bits} -> {act}, "
            f"II={self.initiation_interval}"
        )


@dataclass
class StreamingFIFO:
    """Inter-stage elastic buffer (depth sized from cycle simulation)."""

    name: str
    width_bits: int
    depth: int = 2

    @property
    def initiation_interval(self) -> int:
        return 1

    @property
    def latency_cycles(self) -> int:
        return 1

    def resources(self) -> ResourceEstimate:
        storage_luts = self.depth * self.width_bits / 64 + 20
        return ResourceEstimate(lut=storage_luts, ff=storage_luts * 0.8, bram36=0, dsp=0)


@dataclass
class PostProc:
    """Final ScaleBias + ArgMax stage (fixed-point de-quant + LabelSelect)."""

    name: str
    channels: int
    acc_bits: int

    @property
    def initiation_interval(self) -> int:
        return self.channels  # one comparison per channel beat

    @property
    def latency_cycles(self) -> int:
        return self.channels + 2

    def resources(self) -> ResourceEstimate:
        # One fixed-point multiply-add per channel beat plus the compare tree.
        lut = self.channels * self.acc_bits + 80
        return ResourceEstimate(lut=lut, ff=lut * FF_PER_LUT, bram36=0, dsp=0)


@dataclass
class HWPipeline:
    """The ordered hardware stages of one accelerator IP."""

    stages: list = field(default_factory=list)  # MVAU | PostProc
    fifos: list[StreamingFIFO] = field(default_factory=list)
    graph: DataflowGraph | None = None
    folding: FoldingConfig | None = None

    @property
    def initiation_interval(self) -> int:
        """Pipeline II: the slowest stage gates steady-state throughput."""
        return max(stage.initiation_interval for stage in self.stages)

    @property
    def latency_cycles(self) -> int:
        """Single-sample latency through all stages and FIFOs."""
        stage_latency = sum(stage.latency_cycles for stage in self.stages)
        return stage_latency + len(self.fifos)

    def core_resources(self) -> ResourceEstimate:
        """Dataflow core estimate (stages + FIFOs, no AXI wrapper)."""
        total = ResourceEstimate()
        for stage in self.stages:
            total = total + stage.resources()
        for fifo in self.fifos:
            total = total + fifo.resources()
        return total

    def describe(self) -> str:
        lines = [stage.describe() if isinstance(stage, MVAU) else repr(stage) for stage in self.stages]
        lines.append(f"II={self.initiation_interval} cycles, latency={self.latency_cycles} cycles")
        return "\n".join(lines)


def to_hw_pipeline(graph: DataflowGraph, folding: FoldingConfig) -> HWPipeline:
    """Map a streamlined graph + folding onto hardware units.

    PadNodes are free (wiring); each MatMul takes the next folding
    entry and fuses a following MultiThreshold; ScaleBias+ArgMax become
    the PostProc stage.  A FIFO is placed between consecutive compute
    stages.
    """
    matmuls = graph.nodes_of_type(MatMulIntNode)
    if len(folding) != len(matmuls):
        raise CompileError(
            f"folding has {len(folding)} entries for {len(matmuls)} matmul layers"
        )
    infos = graph.edge_infos()
    stages: list = []
    fold_index = 0
    nodes = graph.nodes
    index = 0
    while index < len(nodes):
        node = nodes[index]
        input_info = infos[index]
        if isinstance(node, PadNode):
            index += 1
            continue
        if isinstance(node, MatMulIntNode):
            pe = folding.pe[fold_index]
            simd = folding.simd[fold_index]
            acc_dtype = node.accumulator_dtype(input_info.dtype)
            act_bits: int | None = None
            threshold_steps = 0
            if index + 1 < len(nodes) and isinstance(nodes[index + 1], MultiThresholdNode):
                threshold: MultiThresholdNode = nodes[index + 1]
                act_bits = threshold.bits
                threshold_steps = threshold.steps
                index += 1
            stages.append(
                MVAU(
                    name=node.name,
                    in_features=node.in_features,
                    out_features=node.out_features,
                    pe=pe,
                    simd=simd,
                    weight_bits=node.weight_bits,
                    input_bits=input_info.dtype.bits,
                    acc_bits=acc_dtype.bits,
                    act_bits=act_bits,
                    threshold_steps=threshold_steps,
                )
            )
            fold_index += 1
            index += 1
            continue
        if isinstance(node, ScaleBiasNode):
            acc_bits = infos[index].dtype.bits if infos[index].dtype else 32
            has_argmax = index + 1 < len(nodes) and isinstance(nodes[index + 1], ArgMaxNode)
            stages.append(PostProc(name="postproc", channels=node.scale.shape[0], acc_bits=acc_bits))
            index += 2 if has_argmax else 1
            continue
        raise CompileError(f"unexpected node {type(node).__name__} in streamlined graph")

    fifos = []
    for left, right in zip(stages[:-1], stages[1:]):
        width = 32
        if isinstance(left, MVAU):
            out_bits = left.act_bits if left.act_bits else left.acc_bits
            width = left.pe * out_bits
        fifos.append(StreamingFIFO(name=f"fifo_{left.name}_{right.name}", width_bits=width))
    return HWPipeline(stages=stages, fifos=fifos, graph=graph, folding=folding)
