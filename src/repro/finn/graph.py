"""Dataflow intermediate representation.

A :class:`DataflowGraph` is a linear pipeline of nodes (sufficient for
the MLP topologies FINN calls "streaming dataflow"), annotated with the
integer datatype flowing over each edge.  Two node vocabularies share
the IR:

* **frontend** nodes produced by :mod:`repro.finn.build` —
  :class:`MatMulIntNode`, :class:`AddBiasNode`, :class:`QuantActNode`;
  value semantics are float (scaled integers), mirroring the exported
  QAT model exactly.
* **streamlined** nodes produced by :mod:`repro.finn.streamline` —
  :class:`MatMulIntNode`, :class:`MultiThresholdNode`,
  :class:`ScaleBiasNode`, :class:`ArgMaxNode`; everything up to the
  final scale/bias is integer-only, which is what maps onto hardware.

``execute`` runs the functional (untimed) semantics; it is the golden
reference the cycle simulator and the bit-exactness verifier compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompileError, ShapeError

__all__ = [
    "IntType",
    "TensorInfo",
    "Node",
    "MatMulIntNode",
    "QuantActNode",
    "MultiThresholdNode",
    "ScaleBiasNode",
    "ArgMaxNode",
    "PadNode",
    "DataflowGraph",
]


@dataclass(frozen=True)
class IntType:
    """An integer datatype on a dataflow edge (FINN's ``DataType``)."""

    bits: int
    signed: bool

    @property
    def min(self) -> int:
        return -(2 ** (self.bits - 1)) if self.signed else 0

    @property
    def max(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.signed else 2**self.bits - 1

    def contains(self, values: np.ndarray) -> bool:
        """Whether all values fit this datatype."""
        if values.size == 0:
            return True
        return bool(values.min() >= self.min and values.max() <= self.max)

    @staticmethod
    def for_range(low: int, high: int) -> "IntType":
        """Smallest IntType covering ``[low, high]``.

        >>> IntType.for_range(0, 15)
        IntType(bits=4, signed=False)
        >>> IntType.for_range(-3, 7).signed
        True
        """
        if low > high:
            raise CompileError(f"empty range [{low}, {high}]")
        if low >= 0:
            bits = max(int(np.ceil(np.log2(high + 1))) if high > 0 else 1, 1)
            return IntType(bits, signed=False)
        bits = 1
        while -(2 ** (bits - 1)) > low or high > 2 ** (bits - 1) - 1:
            bits += 1
        return IntType(bits, signed=True)

    def __str__(self) -> str:
        return f"{'INT' if self.signed else 'UINT'}{self.bits}"


@dataclass(frozen=True)
class TensorInfo:
    """Shape + datatype of a dataflow edge (per-sample, batch-free).

    ``dtype=None`` marks a float edge (de-quantised logits after the
    final :class:`ScaleBiasNode`); every other edge carries integers.
    """

    features: int
    dtype: IntType | None

    def __str__(self) -> str:
        return f"[{self.features} x {self.dtype if self.dtype else 'FLOAT'}]"


class Node:
    """Base dataflow node: consumes one tensor, produces one tensor."""

    def __init__(self, name: str):
        self.name = name

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        """Infer the output edge metadata from the input edge."""
        raise NotImplementedError

    def execute(self, values: np.ndarray) -> np.ndarray:
        """Functional semantics on a batch (N, features) array."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class MatMulIntNode(Node):
    """Integer matrix-vector product ``acc = x @ W.T``.

    The weight matrix is integer; the node also records the scale the
    weights carry so frontend execution can reproduce float semantics
    (streamlining absorbs the scale into downstream nodes).
    """

    def __init__(self, name: str, weight_int: np.ndarray, weight_scale: np.ndarray, weight_bits: int):
        super().__init__(name)
        self.weight_int = np.asarray(weight_int, dtype=np.int64)
        if self.weight_int.ndim != 2:
            raise CompileError(f"{name}: weight must be 2-D, got {self.weight_int.shape}")
        self.weight_scale = np.asarray(weight_scale, dtype=np.float64)
        self.weight_bits = weight_bits

    @property
    def out_features(self) -> int:
        return int(self.weight_int.shape[0])

    @property
    def in_features(self) -> int:
        return int(self.weight_int.shape[1])

    def accumulator_range(self, input_dtype: IntType) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-channel accumulator bounds for the input datatype."""
        positive = np.clip(self.weight_int, 0, None)
        negative = np.clip(self.weight_int, None, 0)
        # x in [in_min, in_max]: max acc pairs positive weights with in_max.
        in_min, in_max = input_dtype.min, input_dtype.max
        acc_max = positive.sum(axis=1) * in_max + negative.sum(axis=1) * in_min
        acc_min = positive.sum(axis=1) * in_min + negative.sum(axis=1) * in_max
        return acc_min, acc_max

    def accumulator_dtype(self, input_dtype: IntType) -> IntType:
        """Smallest accumulator datatype (FINN's ``InferDataTypes``)."""
        acc_min, acc_max = self.accumulator_range(input_dtype)
        return IntType.for_range(int(acc_min.min()), int(acc_max.max()))

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        return TensorInfo(self.out_features, self.accumulator_dtype(input_info.dtype))

    def execute(self, values: np.ndarray) -> np.ndarray:
        if values.shape[-1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} features, got {values.shape[-1]}"
            )
        return values @ self.weight_int.T.astype(np.float64)


class QuantActNode(Node):
    """Frontend ReLU + uniform quantisation.

    Consumes the de-quantised (float) pre-activation and emits the
    **integer** activation level, so downstream integer matmuls connect
    directly.  Streamlining replaces [MatMul, ScaleBias, QuantAct] with
    [MatMul, MultiThreshold] — same function, integer-only.
    """

    def __init__(self, name: str, scale: float, bits: int):
        super().__init__(name)
        self.scale = float(scale)
        self.bits = bits

    @property
    def levels(self) -> int:
        return 2**self.bits - 1

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        return TensorInfo(input_info.features, IntType(self.bits, signed=False))

    def execute(self, values: np.ndarray) -> np.ndarray:
        from repro.quant.quantizers import round_half_up_array

        rectified = np.maximum(values, 0.0)
        return np.clip(round_half_up_array(rectified / self.scale), 0, self.levels).astype(np.float64)


class MultiThresholdNode(Node):
    """Integer staircase activation (FINN's ``MultiThreshold``).

    ``y[c] = sum_t (acc[c] >= thresholds[c, t])`` — an unsigned
    ``bits``-wide output per channel.  Thresholds are ascending along
    the step axis.
    """

    def __init__(self, name: str, thresholds: np.ndarray, bits: int):
        super().__init__(name)
        self.thresholds = np.asarray(thresholds, dtype=np.int64)
        if self.thresholds.ndim != 2:
            raise CompileError(f"{name}: thresholds must be (channels, steps)")
        if np.any(np.diff(self.thresholds, axis=1) < 0):
            raise CompileError(f"{name}: thresholds must be ascending per channel")
        self.bits = bits
        if self.thresholds.shape[1] != 2**bits - 1:
            raise CompileError(
                f"{name}: {self.thresholds.shape[1]} steps cannot produce "
                f"UINT{bits} outputs (need {2**bits - 1})"
            )

    @property
    def channels(self) -> int:
        return int(self.thresholds.shape[0])

    @property
    def steps(self) -> int:
        return int(self.thresholds.shape[1])

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        if input_info.features != self.channels:
            raise CompileError(
                f"{self.name}: {self.channels} threshold channels vs "
                f"{input_info.features} input features"
            )
        return TensorInfo(self.channels, IntType(self.bits, signed=False))

    def execute(self, values: np.ndarray) -> np.ndarray:
        # (N, C) against (C, T): broadcast compare then count steps passed.
        return (values[:, :, None] >= self.thresholds[None, :, :]).sum(axis=2).astype(np.float64)


class ScaleBiasNode(Node):
    """Final-layer affine de-quantisation ``y = scale * acc + bias``.

    Kept exact in float64; with power-of-two scales the result is
    bit-identical to the QAT model's logits.
    """

    def __init__(self, name: str, scale: np.ndarray, bias: np.ndarray):
        super().__init__(name)
        self.scale = np.asarray(scale, dtype=np.float64)
        self.bias = np.asarray(bias, dtype=np.float64)

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        return TensorInfo(input_info.features, None)  # logits leave the integer domain

    def execute(self, values: np.ndarray) -> np.ndarray:
        return values * self.scale.reshape(1, -1) + self.bias


class ArgMaxNode(Node):
    """Classification head (FINN's ``LabelSelect``): index of the max."""

    def __init__(self, name: str = "label_select"):
        super().__init__(name)

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        bits = max(int(np.ceil(np.log2(max(input_info.features, 2)))), 1)
        return TensorInfo(1, IntType(bits, signed=False))

    def execute(self, values: np.ndarray) -> np.ndarray:
        return values.argmax(axis=1).astype(np.float64).reshape(-1, 1)


class PadNode(Node):
    """Zero-pad the feature dimension (FINN pads to SIMD-friendly widths)."""

    def __init__(self, name: str, target_features: int):
        super().__init__(name)
        self.target_features = target_features

    def output_info(self, input_info: TensorInfo) -> TensorInfo:
        if input_info.features > self.target_features:
            raise CompileError(
                f"{self.name}: cannot pad {input_info.features} down to {self.target_features}"
            )
        return TensorInfo(self.target_features, input_info.dtype)

    def execute(self, values: np.ndarray) -> np.ndarray:
        pad = self.target_features - values.shape[1]
        if pad == 0:
            return values
        return np.pad(values, ((0, 0), (0, pad)))


@dataclass
class DataflowGraph:
    """A linear pipeline of dataflow nodes plus the input edge metadata."""

    input_info: TensorInfo
    nodes: list[Node] = field(default_factory=list)
    name: str = "dataflow"

    def append(self, node: Node) -> None:
        self.nodes.append(node)

    def edge_infos(self) -> list[TensorInfo]:
        """Tensor metadata for every edge, input first."""
        infos = [self.input_info]
        for node in self.nodes:
            infos.append(node.output_info(infos[-1]))
        return infos

    def validate(self) -> None:
        """Shape/width inference across the whole pipeline (raises on error)."""
        self.edge_infos()

    def execute(self, values: np.ndarray) -> np.ndarray:
        """Run functional semantics on an (N, F) batch."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[None, :]
        if values.shape[1] != self.input_info.features:
            raise ShapeError(
                f"graph expects {self.input_info.features} features, got {values.shape[1]}"
            )
        for node in self.nodes:
            values = node.execute(values)
        return values

    def nodes_of_type(self, node_type: type) -> list[Node]:
        """All nodes of a given class, in pipeline order."""
        return [node for node in self.nodes if isinstance(node, node_type)]

    def summary(self) -> str:
        """Multi-line textual pipeline description."""
        lines = [f"DataflowGraph {self.name!r}: input {self.input_info}"]
        infos = self.edge_infos()
        for node, info in zip(self.nodes, infos[1:]):
            lines.append(f"  {type(node).__name__:<20} {node.name:<16} -> {info}")
        return "\n".join(lines)
