"""Lower a trained quantised network into the frontend dataflow graph.

The frontend graph mirrors the QAT model's eval forward exactly, but
with the integer structure made explicit: every hidden layer becomes

    MatMulInt (integer accumulate)
    -> ScaleBias (de-quantise: * weight_scale*input_scale, + bias)
    -> QuantAct  (ReLU + re-quantise to the next integer grid)

and the output layer becomes ``MatMulInt -> ScaleBias`` (float logits),
optionally followed by ``ArgMax`` (FINN's LabelSelect).  The graph input
is the **integer representation** of the feature vector; use
:func:`quantize_input` to convert raw features the way the on-target
driver does.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.finn.graph import (
    ArgMaxNode,
    DataflowGraph,
    IntType,
    MatMulIntNode,
    QuantActNode,
    ScaleBiasNode,
    TensorInfo,
)
from repro.quant.export import QNNExport
from repro.quant.quantizers import round_half_up_array

__all__ = ["build_frontend_graph", "input_quant_range", "quantize_features", "quantize_input"]


def input_quant_range(input_quant) -> tuple[int, int]:
    """The ``(qmin, qmax)`` integer range of an input quantiser."""
    if input_quant.signed:
        qmax = 2 ** (input_quant.bit_width - 1) - 1
        qmin = -qmax if input_quant.narrow_range else -(qmax + 1)
    else:
        qmin, qmax = 0, 2**input_quant.bit_width - 1
    return qmin, qmax


def quantize_features(input_quant, features: np.ndarray) -> np.ndarray:
    """Apply one input quantiser (scale + round + clip) to raw features.

    Shared by :func:`quantize_input` and the compiled engine
    (:mod:`repro.finn.compiled`) so both entry points stay bit-identical
    by construction.
    """
    qmin, qmax = input_quant_range(input_quant)
    ints = np.clip(
        round_half_up_array(np.asarray(features, dtype=np.float64) / input_quant.scale),
        qmin,
        qmax,
    )
    return ints.astype(np.float64)


def quantize_input(export: QNNExport, features: np.ndarray) -> np.ndarray:
    """Convert raw feature vectors to the graph's integer input domain.

    This is what the SoC driver does before handing data to the IP: it
    applies the input quantiser (scale + clip + round) and transmits
    integers.
    """
    return quantize_features(export.input_quant, features)


def build_frontend_graph(export: QNNExport, with_argmax: bool = True, name: str = "qnn") -> DataflowGraph:
    """Build the frontend :class:`DataflowGraph` from a :class:`QNNExport`.

    Parameters
    ----------
    with_argmax:
        Append the LabelSelect (argmax) head so the IP emits a class
        index; disable to expose the float logits as graph output.
    """
    if not export.layers:
        raise CompileError("export contains no layers")
    iq = export.input_quant
    graph = DataflowGraph(
        input_info=TensorInfo(export.input_features, IntType(iq.bit_width, iq.signed)),
        name=name,
    )
    input_scale = iq.scale
    for index, layer in enumerate(export.layers):
        matmul = MatMulIntNode(
            f"{layer.name}_matmul",
            layer.weight_int,
            layer.weight_scale,
            layer.weight_bits,
        )
        graph.append(matmul)
        # Accumulator scale: weight scale times the scale of this layer's
        # integer inputs (input quantiser or the previous activation).
        acc_scale = np.asarray(layer.weight_scale, dtype=np.float64).reshape(-1) * input_scale
        if acc_scale.size not in (1, layer.out_features):
            raise CompileError(
                f"{layer.name}: weight scale has {acc_scale.size} entries for "
                f"{layer.out_features} channels"
            )
        scale_vec = np.broadcast_to(acc_scale, (layer.out_features,)).copy()
        graph.append(ScaleBiasNode(f"{layer.name}_dequant", scale_vec, layer.bias))
        if layer.activation is not None:
            act = layer.activation
            graph.append(QuantActNode(f"{layer.name}_act", act.scale, act.bit_width))
            input_scale = act.scale
        elif index != len(export.layers) - 1:
            raise CompileError(f"{layer.name}: only the final layer may omit activation")
    if with_argmax:
        graph.append(ArgMaxNode())
    graph.validate()
    return graph
