"""IP packaging: the compiled accelerator artefact.

``compile_model`` is the facade over the whole FINN-substitute flow —
export, frontend build, streamlining, folding, hardware mapping, FIFO
sizing, resource estimation and bit-exactness verification — returning
an :class:`AcceleratorIP`: the object the SoC layer instantiates as a
memory-mapped peripheral, exactly like the HLS IP + driver pair FINN
emits for the Zynq design flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.module import Module
from repro.finn.build import build_frontend_graph, quantize_input
from repro.finn.cyclesim import CycleSimulator, SimReport
from repro.finn.folding import FoldingConfig, fold_for_target
from repro.finn.graph import DataflowGraph
from repro.finn.hls_layers import HWPipeline, to_hw_pipeline
from repro.finn.resources import ResourceEstimate, wrapper_resources
from repro.finn.streamline import streamline
from repro.finn.verify import VerificationReport, verify_bit_exact
from repro.quant.export import QNNExport, export_qnn
from repro.utils.rng import new_rng

__all__ = ["RegisterMap", "AcceleratorIP", "compile_model"]


@dataclass(frozen=True)
class RegisterMap:
    """AXI-lite register layout of the generated IP.

    Mirrors the Vivado HLS ``s_axilite`` convention the FINN/PYNQ flow
    uses: a control register, a status register, the result register
    and a write-only input buffer window.
    """

    CTRL: int = 0x00  # bit0: start
    STATUS: int = 0x04  # bit0: done, bit1: busy
    OUT_LABEL: int = 0x08
    INPUT_BASE: int = 0x10
    input_words: int = 0
    #: Total address span in bytes (word aligned).
    span: int = 0

    @staticmethod
    def for_input(features: int, bits_per_feature: int) -> "RegisterMap":
        """Register map for an input vector of ``features`` x ``bits``."""
        total_bits = features * bits_per_feature
        words = (total_bits + 31) // 32
        return RegisterMap(input_words=words, span=0x10 + 4 * words)


@dataclass
class AcceleratorIP:
    """A compiled, verified IDS accelerator core.

    Attributes
    ----------
    graph:
        Streamlined integer dataflow graph (functional semantics).
    pipeline:
        Hardware stage models with folding applied (timing/resources).
    resources:
        Total estimate including the AXI wrapper.
    """

    name: str
    export: QNNExport
    graph: DataflowGraph
    pipeline: HWPipeline
    folding: FoldingConfig
    clock_hz: float
    resources: ResourceEstimate
    register_map: RegisterMap
    verification: VerificationReport | None = None
    metadata: dict = field(default_factory=dict)

    # -- functional execution -------------------------------------------
    def run(self, features: np.ndarray) -> np.ndarray:
        """Classify raw feature vectors; returns predicted labels (N,)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        x_int = quantize_input(self.export, features)
        output = self.graph.execute(x_int)
        if output.shape[1] == 1:  # argmax head present
            return output.reshape(-1).astype(np.int64)
        return output.argmax(axis=1)

    def logits(self, features: np.ndarray) -> np.ndarray:
        """De-quantised logits for raw feature vectors."""
        from repro.finn.verify import _execute_logits

        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        x_int = quantize_input(self.export, features)
        logits, _ = _execute_logits(self.graph, x_int)
        return logits

    # -- timing ----------------------------------------------------------
    @property
    def latency_cycles(self) -> int:
        """Single-inference latency of the hardware core."""
        return self.pipeline.latency_cycles

    @property
    def latency_seconds(self) -> float:
        return self.latency_cycles / self.clock_hz

    @property
    def throughput_fps(self) -> float:
        """Steady-state inferences/second of the core alone."""
        return self.clock_hz / self.pipeline.initiation_interval

    def simulate(self, num_samples: int, arrival_cycles: np.ndarray | None = None) -> SimReport:
        """Run the cycle-accurate pipeline simulation."""
        return CycleSimulator(self.pipeline, self.clock_hz).simulate(num_samples, arrival_cycles)

    # -- reporting ---------------------------------------------------------
    def summary(self) -> str:
        lines = [
            f"AcceleratorIP {self.name!r} @ {self.clock_hz / 1e6:g} MHz",
            f"  topology: {'-'.join(str(w) for w in self.export.topology)}",
            f"  folding:  PE={self.folding.pe} SIMD={self.folding.simd}",
            f"  II: {self.pipeline.initiation_interval} cycles "
            f"({self.throughput_fps:,.0f} fps), "
            f"latency: {self.latency_cycles} cycles ({self.latency_seconds * 1e6:.2f} us)",
            f"  resources: {self.resources}",
        ]
        if self.verification:
            lines.append(f"  {self.verification}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "clock_hz": self.clock_hz,
            "topology": self.export.topology,
            "folding": self.folding.to_dict(),
            "initiation_interval": self.pipeline.initiation_interval,
            "latency_cycles": self.latency_cycles,
            "throughput_fps": self.throughput_fps,
            "resources": self.resources.to_dict(),
            "register_map": {
                "CTRL": self.register_map.CTRL,
                "STATUS": self.register_map.STATUS,
                "OUT_LABEL": self.register_map.OUT_LABEL,
                "INPUT_BASE": self.register_map.INPUT_BASE,
                "input_words": self.register_map.input_words,
            },
            "metadata": dict(self.metadata),
        }


def compile_model(
    model: Module | QNNExport,
    name: str = "ids-accel",
    target_fps: float = 1e6,
    clock_mhz: float = 100.0,
    pad_multiple: int = 8,
    with_argmax: bool = True,
    verify: bool = True,
    verify_samples: int = 64,
    seed: int = 0,
) -> AcceleratorIP:
    """Compile a trained quantised model into a verified accelerator IP.

    Parameters
    ----------
    model:
        A trained QAT module (canonical topology) or a ready
        :class:`~repro.quant.export.QNNExport`.
    target_fps:
        Folding throughput target; the paper's flow folds for
        well-above-line-rate throughput, leaving latency dominated by
        the software path.
    verify:
        Run the bit-exactness check against ``verify_samples`` random
        feature vectors before returning (fails loudly, like FINN's
        verification-enabled builds).
    """
    export = model if isinstance(model, QNNExport) else export_qnn(model)
    clock_hz = clock_mhz * 1e6
    frontend = build_frontend_graph(export, with_argmax=with_argmax, name=name)
    hw_graph = streamline(frontend, pad_multiple=pad_multiple)
    folding = fold_for_target(hw_graph, target_fps=target_fps, clock_hz=clock_hz)
    pipeline = to_hw_pipeline(hw_graph, folding)
    CycleSimulator(pipeline, clock_hz).size_fifos()
    resources = pipeline.core_resources() + wrapper_resources()
    register_map = RegisterMap.for_input(export.input_features, export.input_quant.bit_width)

    verification: VerificationReport | None = None
    if verify:
        rng = new_rng(seed, f"compile-verify-{name}")
        samples = rng.random((verify_samples, export.input_features))
        # Exactness is only guaranteed when every scale in the network is a
        # power of two (the library default); float scales get a tolerance.
        scales = [export.input_quant.scale]
        for layer in export.layers:
            scales.extend(np.asarray(layer.weight_scale, dtype=np.float64).reshape(-1).tolist())
            if layer.activation is not None:
                scales.append(layer.activation.scale)
        require_exact = all(_is_po2(float(s)) for s in scales)
        verification = verify_bit_exact(export, hw_graph, samples, require_exact=require_exact)

    return AcceleratorIP(
        name=name,
        export=export,
        graph=hw_graph,
        pipeline=pipeline,
        folding=folding,
        clock_hz=clock_hz,
        resources=resources,
        register_map=register_map,
        verification=verification,
        metadata={"target_fps": target_fps, "pad_multiple": pad_multiple},
    )


def _is_po2(value: float) -> bool:
    if value <= 0:
        return False
    mantissa, _ = np.frexp(value)
    return mantissa == 0.5
