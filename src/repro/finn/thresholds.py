"""Exact activation-to-threshold conversion.

The heart of FINN streamlining: a quantised activation

    y_int = clip( round_half_up( (ReLU(s_acc * acc + b)) / s_y ), 0, L )

over an **integer** accumulator ``acc`` is a monotone staircase, so it
can be implemented as ``L`` integer comparisons:

    y_int = sum_{t=1..L} [ acc >= T_t ]

This module computes the ``T_t`` per output channel.  The analytical
candidate is ``T_t = ceil( (s_y * (t - 0.5) - b) / s_acc )``; because
scales and biases are float64, the candidate is then *fixed up* against
the actual activation function (same float operations as the QAT
model), guaranteeing bit-exactness by construction rather than by
numerical luck.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.quant.quantizers import round_half_up_array

__all__ = ["activation_int", "compute_thresholds"]


def activation_int(
    acc: np.ndarray | float,
    acc_scale: float,
    bias: float,
    act_scale: float,
    levels: int,
) -> np.ndarray:
    """Reference integer activation for one channel.

    ``acc`` is the integer accumulator; returns the unsigned activation
    level, using the exact float operations of the QAT eval forward.
    """
    value = np.maximum(acc_scale * np.asarray(acc, dtype=np.float64) + bias, 0.0)
    return np.clip(round_half_up_array(value / act_scale), 0, levels).astype(np.int64)


def _fixup_threshold(
    candidate: int,
    level: int,
    acc_scale: float,
    bias: float,
    act_scale: float,
    levels: int,
    max_steps: int = 64,
) -> int:
    """Nudge ``candidate`` until it is the exact step point for ``level``.

    The correct threshold T satisfies ``f(T) >= level`` and
    ``f(T-1) < level`` where ``f`` is the (monotone) integer activation.
    Float rounding can put the analytical candidate off by one in either
    direction; a short walk fixes it.
    """

    def f(acc: int) -> int:
        return int(activation_int(acc, acc_scale, bias, act_scale, levels))

    steps = 0
    while f(candidate) >= level and steps < max_steps:
        candidate -= 1
        steps += 1
    steps = 0
    while f(candidate) < level and steps < max_steps:
        candidate += 1
        steps += 1
    if not (f(candidate) >= level and f(candidate - 1) < level):
        raise CompileError(
            f"threshold fix-up failed for level {level} "
            f"(acc_scale={acc_scale}, bias={bias}, act_scale={act_scale})"
        )
    return candidate


def compute_thresholds(
    acc_scale: np.ndarray | float,
    bias: np.ndarray,
    act_scale: float,
    act_bits: int,
) -> np.ndarray:
    """Per-channel integer thresholds for a quantised ReLU activation.

    Parameters
    ----------
    acc_scale:
        ``weight_scale * input_scale`` — scalar or per-channel array;
        the scale of the integer accumulator.
    bias:
        Per-channel float bias (``(C,)``).
    act_scale:
        The activation quantiser's scale.
    act_bits:
        Activation bit width; produces ``2**act_bits - 1`` thresholds.

    Returns
    -------
    ndarray
        ``(C, 2**act_bits - 1)`` ascending integer thresholds.
    """
    bias = np.asarray(bias, dtype=np.float64)
    channels = bias.shape[0]
    acc_scale_arr = np.broadcast_to(np.asarray(acc_scale, dtype=np.float64).reshape(-1), (channels,))
    if np.any(acc_scale_arr <= 0) or act_scale <= 0:
        raise CompileError("scales must be positive for threshold conversion")
    levels = 2**act_bits - 1
    thresholds = np.empty((channels, levels), dtype=np.int64)
    for channel in range(channels):
        s_acc = float(acc_scale_arr[channel])
        b = float(bias[channel])
        for level in range(1, levels + 1):
            candidate = int(np.ceil((act_scale * (level - 0.5) - b) / s_acc))
            thresholds[channel, level - 1] = _fixup_threshold(
                candidate, level, s_acc, b, act_scale, levels
            )
    if np.any(np.diff(thresholds, axis=1) < 0):
        raise CompileError("computed thresholds are not monotone (invalid quantiser state)")
    return thresholds
