"""One-shot compiler lowering a streamlined graph to a fused integer engine.

The functional model executes a streamlined :class:`DataflowGraph` node
by node in float64, re-broadcasting every accumulator against all
``2**bits - 1`` thresholds.  That is the right *reference* semantics —
and a terrible batch path: the ``(N, C, T)`` comparison tensor
dominates the whole receive pipeline.  :func:`compile_engine` walks the
graph once and emits a :class:`CompiledEngine` whose ``predict`` is
bit-exact against ``DataflowGraph.execute`` but built from flat kernels:

* **Pads folded away.**  FINN pads matmul inputs with zero columns;
  the engine slices those columns off the weight matrix instead of
  materialising padded activations (zero columns never contribute).
* **Integer weights, exact operands.**  Weights are held as ``int8``
  (the hardware's view).  For the matmul itself the engine picks, per
  layer, the cheapest *provably exact* operand type from the layer's
  worst-case accumulator magnitude ``B = max_c sum_k |w[c, k]| *
  max|x|``: ``float32`` SGEMM when ``B < 2**24`` (every partial sum is
  an integer below the mantissa limit, so BLAS is exact — and ~15x
  faster than numpy's integer matmul), ``float64`` DGEMM below
  ``2**53``, and a true ``int64`` matmul beyond that.
* **Log-time thresholds.**  Each MultiThreshold layer resolves
  activations with per-channel :func:`np.searchsorted` over the
  ascending threshold rows — O(log steps) per value instead of the
  dense ``>=``-broadcast.  Below ``STEPPED_KERNEL_MAX_STEPS`` steps a
  stepped-compare kernel (one vectorised ``>=`` pass per step,
  accumulated into a uint8 buffer) is cache-friendlier and wins; the
  crossover was measured, and both kernels are bit-exact.
* **Preallocated chunk buffers.**  Batches stream through fixed
  per-layer scratch buffers (thread-local, so one engine can serve
  several gateway channels or campaign-sweep workers concurrently)
  instead of allocating a tensor per node per batch.
* **Integer argmax.**  The classification head runs on the integer
  accumulators directly whenever the final de-quantisation provably
  preserves order and ties (uniform power-of-two scale, zero bias);
  otherwise the exact float64 affine of :class:`ScaleBiasNode` is
  applied to the (tiny) logit matrix first.

``engine_for`` memoises compilation per export, so a multi-channel
gateway and all campaign-sweep scenarios carrying the same
:class:`~repro.finn.ipgen.AcceleratorIP` share one compiled model
instead of re-lowering the graph per ECU.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.finn.ipgen import AcceleratorIP
    from repro.quant.export import ActQuantExport

from repro.errors import CompileError, ShapeError, VerificationError
from repro.finn.build import input_quant_range
from repro.finn.graph import (
    ArgMaxNode,
    DataflowGraph,
    MatMulIntNode,
    MultiThresholdNode,
    PadNode,
    ScaleBiasNode,
)
from repro.utils.rng import new_rng
from repro.utils.weakcache import KeyedWeakCache

__all__ = [
    "CompiledEngine",
    "EngineCacheInfo",
    "compile_engine",
    "engine_for",
    "engine_cache_info",
]

#: Threshold-step count at or below which the stepped-compare kernel is
#: used instead of per-channel searchsorted.  Measured crossover: the
#: stepped kernel's T sequential passes beat binary search up to a few
#: dozen steps (W4A4's 15 steps sit well inside), while 6-bit+
#: activations (63+ steps) want the O(log T) path.
STEPPED_KERNEL_MAX_STEPS = 32

#: Largest integer magnitude float32 SGEMM reproduces exactly.
_F32_EXACT = 2**24
#: Largest integer magnitude float64 DGEMM reproduces exactly.
_F64_EXACT = 2**53

_COMPUTE_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int64": np.int64,
}


@dataclass(frozen=True)
class _LayerPlan:
    """One fused MatMul(+MultiThreshold) stage of the engine."""

    name: str
    weight_i8: np.ndarray  #: canonical (out, in) int8 weights (int16 if >8 bits)
    operand: np.ndarray  #: (in, out) contiguous matmul operand, compute dtype
    thresholds: np.ndarray | None  #: (out, steps) ascending, compute dtype
    kernel: str  #: "stepped" | "searchsorted" | "" (final layer)
    compute_dtype: np.dtype
    count_dtype: np.dtype  #: uint8/uint16 activation-count accumulator
    abs_bound: int  #: worst-case |accumulator| (drives dtype choice)

    @property
    def in_features(self) -> int:
        return int(self.operand.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.operand.shape[1])


class _Scratch:
    """Per-thread preallocated chunk buffers for one engine."""

    def __init__(self, layers: list[_LayerPlan], rows: int) -> None:
        self.rows = rows
        self.quant = np.empty((rows, layers[0].in_features), dtype=np.float64)
        self.inputs = [np.empty((rows, layer.in_features), dtype=layer.compute_dtype) for layer in layers]
        self.accs = [np.empty((rows, layer.out_features), dtype=layer.compute_dtype) for layer in layers]
        self.bools = [
            np.empty((rows, layer.out_features), dtype=bool) if layer.thresholds is not None else None
            for layer in layers
        ]
        self.counts = [
            np.empty((rows, layer.out_features), dtype=layer.count_dtype)
            if layer.thresholds is not None
            else None
            for layer in layers
        ]


def _exact_dtype_for(abs_bound: int, steps_bound: int) -> np.dtype:
    """Cheapest operand dtype that reproduces integer arithmetic exactly.

    ``abs_bound`` bounds every partial sum of the matmul (BLAS may
    reorder the reduction arbitrarily; any subset of products is still
    bounded by the sum of absolute products), and ``steps_bound`` the
    clipped threshold magnitudes compared against the accumulators.
    """
    bound = max(abs_bound, steps_bound)
    if bound < _F32_EXACT - 1:
        return np.dtype(np.float32)
    if bound < _F64_EXACT - 1:
        return np.dtype(np.float64)
    if bound < 2**62:
        return np.dtype(np.int64)
    raise CompileError(f"accumulator bound {bound} exceeds exact int64 arithmetic")


class CompiledEngine:
    """A streamlined dataflow graph fused into flat batch kernels.

    Instances are built by :func:`compile_engine` (or fetched from the
    :func:`engine_for` cache) and are immutable after compilation;
    scratch buffers are thread-local, so one engine may be shared by
    concurrent sessions.
    """

    def __init__(
        self,
        layers: list[_LayerPlan],
        final_scale: np.ndarray,
        final_bias: np.ndarray,
        has_argmax: bool,
        input_features: int,
        input_quant: "ActQuantExport | None",
        chunk_size: int,
        source_graph: DataflowGraph,
    ) -> None:
        self._layers = layers
        self._final_scale = final_scale.reshape(1, -1)
        self._final_bias = final_bias
        self.has_argmax = has_argmax
        self.input_features = input_features
        self.input_quant = input_quant
        if input_quant is not None:
            self._qmin, self._qmax = input_quant_range(input_quant)
        self.chunk_size = int(chunk_size)
        self.source_graph = source_graph
        input_dtype = source_graph.input_info.dtype
        self._input_range = (input_dtype.min, input_dtype.max)
        # Float compute lanes reproduce the graph's IEEE NaN semantics
        # bit-exactly (see the threshold kernels); an int64 lane cannot
        # (the NaN->int cast is unspecified), so non-finite inputs are
        # rejected up front when any layer computes in integers.
        self._rejects_nan = any(layer.compute_dtype.kind != "f" for layer in layers)
        self.num_classes = layers[-1].out_features
        # Integer argmax is exact only when the final affine provably
        # preserves order *and ties*: a uniform power-of-two scale is an
        # exponent shift (no rounding), and a zero bias adds nothing.
        # Any other scale/bias could round distinct accumulators onto
        # one logit value, where float argmax tie-breaking diverges
        # from the integer order.
        scale = self._final_scale.reshape(-1)
        self._int_argmax = bool(
            has_argmax
            and np.all(self._final_bias == 0.0)
            and np.all(scale == scale[0])
            and scale[0] > 0
            and _is_po2(float(scale[0]))
        )
        self._local = threading.local()

    # -- public API -------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self._layers)

    @property
    def compute_dtypes(self) -> list[str]:
        """Per-layer matmul operand dtype (exactness-driven)."""
        return [str(layer.compute_dtype) for layer in self._layers]

    @property
    def threshold_kernels(self) -> list[str]:
        return [layer.kernel for layer in self._layers if layer.thresholds is not None]

    @property
    def canonical_weights(self) -> list[np.ndarray]:
        """Per-layer integer weight matrices, hardware view (int8/int16).

        The matmul operands are derived, wider casts of these; this is
        the compact form a deployment would ship to the device.
        """
        return [layer.weight_i8 for layer in self._layers]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Classify raw feature vectors; returns predicted labels (N,).

        Bit-exact against :meth:`AcceleratorIP.run` (same input
        quantiser, same staircase semantics, same argmax tie-breaking).
        Input quantisation is fused into the chunk loop — the same
        divide/round/clip sequence as
        :func:`~repro.finn.build.quantize_features`, but through
        preallocated buffers instead of five batch-sized temporaries.
        """
        if self.input_quant is None:
            raise CompileError("engine was compiled without an input quantiser")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels, _ = self._forward(features, want_logits=False, quantize=True)
        return labels

    def logits(self, features: np.ndarray) -> np.ndarray:
        """De-quantised float64 logits for raw feature vectors."""
        if self.input_quant is None:
            raise CompileError("engine was compiled without an input quantiser")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        _, logits = self._forward(features, want_logits=True, quantize=True)
        return logits

    def run_quantized(self, x_int: np.ndarray) -> np.ndarray:
        """Classify already-quantised integer inputs (graph input domain).

        Inputs must lie in the graph's declared input range: the
        compiled threshold tables are clipped to the accumulator bounds
        reachable from that range, so out-of-domain integers would
        silently diverge from the graph — they raise instead.
        """
        x_int = self._check_input_domain(x_int)
        labels, _ = self._forward(x_int, want_logits=False)
        return labels

    def logits_quantized(self, x_int: np.ndarray) -> np.ndarray:
        """Float64 logits for already-quantised integer inputs."""
        x_int = self._check_input_domain(x_int)
        _, logits = self._forward(x_int, want_logits=True)
        return logits

    def _check_input_domain(self, x_int: np.ndarray) -> np.ndarray:
        x_int = np.atleast_2d(np.asarray(x_int, dtype=np.float64))
        if x_int.size:
            low, high = self._input_range
            # NaN compares false on both sides: on the float compute
            # lanes non-finite garbage is admitted and handled
            # bit-exactly (see the NaN kernels); an integer lane cannot
            # reproduce NaN propagation and refuses it instead.
            if x_int.min() < low or x_int.max() > high:
                raise ShapeError(
                    f"quantised inputs must lie in [{low}, {high}] "
                    f"(the graph's {self.source_graph.input_info.dtype} input domain)"
                )
            self._check_finite(x_int)
        return x_int

    def _check_finite(self, values: np.ndarray) -> None:
        if self._rejects_nan and np.isnan(values).any():
            raise ShapeError(
                "non-finite inputs are not supported on the int64 compute path "
                "(NaN cannot be cast to integers bit-exactly)"
            )

    def summary(self) -> str:
        lines = [
            f"CompiledEngine: {self.input_features} -> "
            + " -> ".join(str(layer.out_features) for layer in self._layers)
            + (" -> argmax" if self.has_argmax else " (logits)")
        ]
        for layer in self._layers:
            kernel = layer.kernel or "scale-bias"
            lines.append(
                f"  {layer.name:<16} {layer.in_features}x{layer.out_features} "
                f"{layer.compute_dtype} |acc|<={layer.abs_bound} [{kernel}]"
            )
        lines.append(f"  chunk={self.chunk_size}, int-argmax={self._int_argmax}")
        return "\n".join(lines)

    # -- execution --------------------------------------------------------
    def _scratch(self) -> _Scratch:
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = self._local.scratch = _Scratch(self._layers, self.chunk_size)
        return scratch

    def _forward(
        self, x: np.ndarray, want_logits: bool, quantize: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        if x.ndim != 2 or x.shape[1] != self.input_features:
            raise ShapeError(
                f"engine expects (N, {self.input_features}) inputs, got {x.shape}"
            )
        n = x.shape[0]
        labels = np.empty(n, dtype=np.int64)
        logits = np.empty((n, self.num_classes), dtype=np.float64) if want_logits else None
        scratch = self._scratch()
        for start in range(0, n, self.chunk_size):
            stop = min(start + self.chunk_size, n)
            self._forward_chunk(x[start:stop], scratch, labels[start:stop],
                                logits[start:stop] if logits is not None else None,
                                quantize)
        return labels, logits

    def _quantize_chunk(self, chunk: np.ndarray, scratch: _Scratch) -> np.ndarray:
        """In-place replay of :func:`quantize_features` on one chunk."""
        rows = chunk.shape[0]
        quantized = scratch.quant[:rows]
        assert self.input_quant is not None  # guarded by the predict() entry check
        np.divide(chunk, self.input_quant.scale, out=quantized)
        quantized += 0.5
        np.floor(quantized, out=quantized)
        np.clip(quantized, self._qmin, self._qmax, out=quantized)
        if self._rejects_nan:
            self._check_finite(quantized)  # clip passes NaN through
        return quantized

    def _forward_chunk(
        self,
        chunk: np.ndarray,
        scratch: _Scratch,
        labels_out: np.ndarray,
        logits_out: np.ndarray | None,
        quantize: bool = False,
    ) -> None:
        rows = chunk.shape[0]
        if quantize:
            chunk = self._quantize_chunk(chunk, scratch)
        values: np.ndarray | None = None  # previous layer's activation counts
        for index, layer in enumerate(self._layers):
            x = scratch.inputs[index][:rows]
            # Quantised inputs / activation counts are small integers;
            # the cast into the layer's exact operand dtype is lossless.
            np.copyto(x, values if values is not None else chunk, casting="unsafe")
            acc = scratch.accs[index][:rows]
            np.matmul(x, layer.operand, out=acc)
            if layer.thresholds is None:
                self._finish(acc, labels_out, logits_out)
                return
            counts = scratch.counts[index][:rows]
            if layer.kernel == "stepped":
                flags = scratch.bools[index][:rows]
                counts[:] = 0
                for step in range(layer.thresholds.shape[1]):
                    np.greater_equal(acc, layer.thresholds[:, step], out=flags)
                    counts += flags
            else:  # searchsorted: count of thresholds <= acc, per channel
                for channel in range(layer.out_features):
                    counts[:, channel] = np.searchsorted(
                        layer.thresholds[channel], acc[:, channel], side="right"
                    )
                if layer.compute_dtype.kind == "f":
                    # searchsorted sorts NaN above every threshold; the
                    # graph's `>=` broadcast (and the stepped kernel)
                    # yield 0 steps for NaN accumulators.  Keep garbage
                    # inputs bit-exact too.
                    invalid = np.isnan(acc)
                    if invalid.any():
                        counts[invalid] = 0
            values = counts

    def _finish(self, acc: np.ndarray, labels_out: np.ndarray, logits_out: np.ndarray | None) -> None:
        if logits_out is None and self._int_argmax:
            np.argmax(acc, axis=1, out=labels_out)
            return
        # Exact float64 replay of ScaleBiasNode: the accumulators are
        # integers below the exactness bound, so the cast is lossless
        # and the affine reproduces the graph's logits bit for bit.
        logits = acc.astype(np.float64) * self._final_scale + self._final_bias
        if logits_out is not None:
            logits_out[:] = logits
        np.argmax(logits, axis=1, out=labels_out)


def compile_engine(
    graph: DataflowGraph,
    input_quant: "ActQuantExport | None" = None,
    chunk_size: int = 2048,
    threshold_kernel: str = "auto",
    compute_dtype: str | None = None,
    self_check_samples: int = 16,
    name: str | None = None,
) -> CompiledEngine:
    """Lower a streamlined :class:`DataflowGraph` to a :class:`CompiledEngine`.

    Parameters
    ----------
    input_quant:
        The export's input quantiser (:class:`~repro.quant.export.ActQuantExport`);
        required for :meth:`CompiledEngine.predict` on raw features
        (``run_quantized`` works without it).
    chunk_size:
        Rows per internal chunk.  2048 keeps every per-layer buffer in
        cache (measured ~20% faster than 8192 on the canonical net).
    threshold_kernel:
        ``"auto"`` (default: stepped below
        :data:`STEPPED_KERNEL_MAX_STEPS` steps, searchsorted above),
        or force ``"stepped"`` / ``"searchsorted"``.
    compute_dtype:
        Override the per-layer operand dtype (``"float32"``,
        ``"float64"`` or ``"int64"``).  Rejected when the requested
        type cannot represent the layer's accumulators exactly —
        exactness is never negotiable.
    self_check_samples:
        Random integer inputs replayed through both the engine and the
        graph after compilation; any mismatch raises
        :class:`~repro.errors.VerificationError`.  0 disables.
    """
    if chunk_size < 1:
        raise CompileError(f"chunk_size must be >= 1, got {chunk_size}")
    if threshold_kernel not in ("auto", "stepped", "searchsorted"):
        raise CompileError(f"unknown threshold kernel {threshold_kernel!r}")
    if compute_dtype is not None and compute_dtype not in _COMPUTE_DTYPES:
        raise CompileError(
            f"compute_dtype must be one of {sorted(_COMPUTE_DTYPES)}, got {compute_dtype!r}"
        )

    infos = graph.edge_infos()  # validates shapes/dtypes along the way
    layers: list[_LayerPlan] = []
    final_scale: np.ndarray | None = None
    final_bias: np.ndarray | None = None
    has_argmax = False
    current_features = graph.input_info.features
    index = 0
    nodes = graph.nodes
    while index < len(nodes):
        node = nodes[index]
        if isinstance(node, PadNode):
            # Padding appends zero columns; the matmul below slices its
            # weights back to the unpadded width instead.
            index += 1
            continue
        if not isinstance(node, MatMulIntNode):
            raise CompileError(
                f"cannot compile non-streamlined node {type(node).__name__} ({node.name})"
            )
        input_dtype = infos[index].dtype  # edge *into* this node (post-pad)
        weight = node.weight_int[:, :current_features]
        max_abs_in = max(abs(input_dtype.min), abs(input_dtype.max))
        abs_bound = int(np.abs(weight).sum(axis=1).max()) * max_abs_in if weight.size else 0

        follower = nodes[index + 1] if index + 1 < len(nodes) else None
        if isinstance(follower, MultiThresholdNode):
            # Thresholds outside the reachable accumulator range never
            # change the staircase; clipping them in keeps every value
            # below the exactness bound of narrow float dtypes.
            thresholds_int = np.clip(follower.thresholds, -abs_bound - 1, abs_bound + 1)
            steps = int(follower.steps)
            steps_bound = abs_bound + 1
            kernel = threshold_kernel
            if kernel == "auto":
                kernel = "stepped" if steps <= STEPPED_KERNEL_MAX_STEPS else "searchsorted"
            count_dtype = np.dtype(np.uint8 if steps <= 255 else np.uint16)
            index += 2
        elif isinstance(follower, ScaleBiasNode):
            thresholds_int = None
            steps_bound = 0
            kernel = ""
            count_dtype = np.dtype(np.uint8)
            final_scale = follower.scale.astype(np.float64)
            final_bias = follower.bias.astype(np.float64)
            index += 2
            if index < len(nodes):
                if not isinstance(nodes[index], ArgMaxNode) or index + 1 != len(nodes):
                    raise CompileError("streamlined graph must end with ScaleBias [+ ArgMax]")
                has_argmax = True
                index += 1
        else:
            raise CompileError(
                f"matmul {node.name} must be followed by MultiThreshold or ScaleBias"
            )

        if compute_dtype is not None:
            dtype = np.dtype(_COMPUTE_DTYPES[compute_dtype])
            exact = _exact_dtype_for(abs_bound, steps_bound)
            # A requested dtype is only legal when at least as wide as
            # the exactness analysis demands (int64 is always exact).
            widths = {"float32": 0, "float64": 1, "int64": 2}
            if widths[dtype.name] < widths[exact.name]:
                raise CompileError(
                    f"{node.name}: compute_dtype {compute_dtype} cannot hold "
                    f"|acc| <= {abs_bound} exactly (needs {exact.name})"
                )
        else:
            dtype = _exact_dtype_for(abs_bound, steps_bound)

        weight_store = np.int8 if int(np.abs(weight).max(initial=0)) <= 127 else np.int16
        layers.append(
            _LayerPlan(
                name=node.name,
                weight_i8=weight.astype(weight_store),
                operand=np.ascontiguousarray(weight.T, dtype=dtype),
                thresholds=None if thresholds_int is None else thresholds_int.astype(dtype),
                kernel=kernel,
                compute_dtype=dtype,
                count_dtype=count_dtype,
                abs_bound=abs_bound,
            )
        )
        current_features = layers[-1].out_features

    if not layers or final_scale is None or final_bias is None:
        raise CompileError("graph has no final ScaleBias stage; streamline it first")
    if input_quant is not None:
        qmin, qmax = input_quant_range(input_quant)
        if max(abs(qmin), abs(qmax)) >= _F32_EXACT:
            raise CompileError("input quantiser range exceeds exact engine input domain")

    engine = CompiledEngine(
        layers=layers,
        final_scale=final_scale,
        final_bias=final_bias,
        has_argmax=has_argmax,
        input_features=graph.input_info.features,
        input_quant=input_quant,
        chunk_size=chunk_size,
        source_graph=graph,
    )
    if self_check_samples:
        _self_check(engine, graph, self_check_samples, name or graph.name)
    return engine


def _self_check(engine: CompiledEngine, graph: DataflowGraph, samples: int, name: str) -> None:
    """Replay random integer inputs through engine and graph; must agree."""
    dtype = graph.input_info.dtype
    rng = new_rng(0, f"compiled-self-check-{name}")
    x_int = rng.integers(dtype.min, dtype.max + 1, size=(samples, graph.input_info.features))
    x_int = x_int.astype(np.float64)
    reference = graph.execute(x_int)
    if engine.has_argmax:
        expected = reference.reshape(-1).astype(np.int64)
        got = engine.run_quantized(x_int)
    else:
        expected = reference
        got = engine.logits_quantized(x_int)
    if not np.array_equal(expected, got):
        raise VerificationError(
            f"compiled engine for {name!r} diverges from DataflowGraph.execute "
            f"on {samples} self-check samples"
        )


# -- engine cache ---------------------------------------------------------
#: id(export) -> engine, anchored on the export's lifetime.
_ENGINES = KeyedWeakCache()
_ENGINES_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


@dataclass(frozen=True)
class EngineCacheInfo:
    hits: int
    misses: int
    size: int


def engine_for(ip: "AcceleratorIP") -> CompiledEngine:
    """The (cached) compiled engine of an :class:`~repro.finn.ipgen.AcceleratorIP`.

    Keyed on the IP's export, so every ECU, gateway channel and
    campaign-sweep scenario carrying the same compiled model shares one
    engine.  Thread-safe; scratch state inside the engine is per
    thread.
    """
    global _CACHE_HITS, _CACHE_MISSES
    export, graph = ip.export, ip.graph
    with _ENGINES_LOCK:
        engine = _ENGINES.get(id(export), export)
        # The same export recompiled onto a different graph (e.g. a new
        # pad multiple) must not serve the old lowering.
        if engine is not None and engine.source_graph is graph:
            _CACHE_HITS += 1
            return engine
        _CACHE_MISSES += 1
        engine = compile_engine(graph, input_quant=export.input_quant, name=getattr(ip, "name", None))
        _ENGINES.put(id(export), export, engine)
        return engine


def engine_cache_info() -> EngineCacheInfo:
    """Hit/miss counters of the :func:`engine_for` cache."""
    with _ENGINES_LOCK:
        return EngineCacheInfo(hits=_CACHE_HITS, misses=_CACHE_MISSES, size=len(_ENGINES))


def _is_po2(value: float) -> bool:
    if value <= 0:
        return False
    mantissa, _ = np.frexp(value)
    return mantissa == 0.5
