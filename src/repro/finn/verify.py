"""Bit-exactness verification between QAT model and compiled dataflow IP.

FINN verifies each compilation stage by comparing ONNX execution
against the parent model; this module does the same for our flow.  With
power-of-two scales (the library default) the check is **exact**: the
streamlined integer graph must reproduce the QAT model's logits
bit-for-bit, because every intermediate value is exactly representable
(see :mod:`repro.quant.quantizers`).  With float scales the comparison
falls back to a tight relative tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import VerificationError
from repro.finn.build import quantize_input
from repro.finn.graph import ArgMaxNode, DataflowGraph
from repro.quant.export import QNNExport

__all__ = ["VerificationReport", "verify_bit_exact"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one verification run."""

    num_samples: int
    max_abs_logit_error: float
    label_agreement: float  # fraction of samples with identical argmax
    exact: bool

    def __str__(self) -> str:
        kind = "bit-exact" if self.exact else f"max |err| {self.max_abs_logit_error:.3g}"
        return (
            f"verified on {self.num_samples} samples: {kind}, "
            f"label agreement {100 * self.label_agreement:.2f}%"
        )


def _execute_logits(graph: DataflowGraph, x_int: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
    """Run the graph, returning (logits, labels-or-None)."""
    values = np.asarray(x_int, dtype=np.float64)
    logits = None
    for node in graph.nodes:
        if isinstance(node, ArgMaxNode):
            logits = values
        values = node.execute(values)
    if logits is None:  # no argmax head: the output is the logits
        return values, None
    return logits, values.reshape(-1).astype(np.int64)


def verify_bit_exact(
    export: QNNExport,
    graph: DataflowGraph,
    features: np.ndarray,
    require_exact: bool = True,
    atol: float = 1e-9,
) -> VerificationReport:
    """Prove the dataflow graph reproduces the QAT model.

    Parameters
    ----------
    export:
        The trained network export (golden reference semantics).
    graph:
        Frontend or streamlined graph to validate.
    features:
        Raw (unquantised) feature vectors, as the driver receives them.
    require_exact:
        Demand zero logit error (valid for power-of-two scales).  When
        False, ``atol`` bounds the acceptable absolute error.

    Raises
    ------
    VerificationError
        On any logit mismatch (beyond tolerance) or label disagreement.
    """
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    reference_logits = export.execute_float(features)
    x_int = quantize_input(export, features)
    graph_logits, graph_labels = _execute_logits(graph, x_int)

    if reference_logits.shape != graph_logits.shape:
        raise VerificationError(
            f"logit shape mismatch: model {reference_logits.shape} vs graph {graph_logits.shape}"
        )
    error = np.abs(reference_logits - graph_logits)
    max_error = float(error.max()) if error.size else 0.0
    exact = max_error == 0.0
    if require_exact and not exact:
        worst = int(np.unravel_index(error.argmax(), error.shape)[0])
        raise VerificationError(
            f"graph is not bit-exact: max |logit error| {max_error:.6g} "
            f"(first worst sample index {worst})"
        )
    if not require_exact and max_error > atol:
        raise VerificationError(f"logit error {max_error:.6g} exceeds tolerance {atol:g}")

    reference_labels = reference_logits.argmax(axis=1)
    labels = graph_labels if graph_labels is not None else graph_logits.argmax(axis=1)
    agreement = float(np.mean(reference_labels == labels))
    if agreement < 1.0:
        raise VerificationError(
            f"label disagreement on {(1 - agreement) * 100:.2f}% of samples"
        )
    return VerificationReport(
        num_samples=features.shape[0],
        max_abs_logit_error=max_error,
        label_agreement=agreement,
        exact=exact,
    )
