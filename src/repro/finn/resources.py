"""Analytical FPGA resource cost models.

FINN reports LUT/FF/BRAM/DSP estimates for every generated layer before
synthesis ("estimate reports"); this module reproduces that cost model
at the same level of abstraction.  The formulas below are documented
approximations in the style of the FINN-R analytical model (Blott et
al., 2018): LUT-based multipliers for few-bit operands, adder trees
sized by accumulator width, weight memory mapped to LUTRAM or BRAM by
size, DSP slices only when operand widths justify them.

Absolute constants are calibration parameters, not synthesis results;
they are chosen to land in the envelope the paper reports for the same
design point (a 4-bit 79-64-64-32-2 MLP consuming <4 % of an XCZU7EV).
All constants are module-level and named so ablation studies can vary
them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceEstimate", "mac_luts", "weight_storage", "threshold_luts"]

# --- calibration constants -------------------------------------------------
#: LUTs per (w x a)-bit multiplier product term (LUT6-based partial products).
LUT_PER_MULT_BIT_PRODUCT = 0.6
#: Fixed LUTs per MAC lane (operand registers/muxing).
LUT_PER_MAC_FIXED = 2.0
#: LUTs per adder bit (2 bits per LUT with carry chains => 0.5/bit).
LUT_PER_ADDER_BIT = 0.5
#: Control/FSM overhead per hardware layer.
LUT_LAYER_CONTROL = 120
#: FF/LUT ratio observed in dataflow accelerators.
FF_PER_LUT = 1.2
#: Bits storable per LUT used as distributed RAM (SLICEM LUT6 = 64 bits).
LUTRAM_BITS_PER_LUT = 64
#: Weight memories at or below this size stay in LUTRAM (FINN "auto" heuristic).
LUTRAM_THRESHOLD_BITS = 32768
#: Usable bits per BRAM18 after width-packing inefficiency.
BRAM18_EFFECTIVE_BITS = 18 * 1024 * 0.75
#: Combined operand width at which a DSP48 beats LUT multipliers.
DSP_OPERAND_WIDTH_THRESHOLD = 10
#: AXI-lite slave + stream adapters + interrupt logic of the IP wrapper.
WRAPPER_LUT, WRAPPER_FF, WRAPPER_BRAM36 = 600, 800, 1


@dataclass(frozen=True)
class ResourceEstimate:
    """FPGA resource bundle (BRAM counted as 36 Kb blocks)."""

    lut: float = 0.0
    ff: float = 0.0
    bram36: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram36=self.bram36 + other.bram36,
            dsp=self.dsp + other.dsp,
        )

    def scaled(self, factor: float) -> "ResourceEstimate":
        """Uniformly scaled estimate (multi-instance deployments)."""
        return ResourceEstimate(
            lut=self.lut * factor,
            ff=self.ff * factor,
            bram36=self.bram36 * factor,
            dsp=self.dsp * factor,
        )

    def to_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "bram36": self.bram36, "dsp": self.dsp}

    def __str__(self) -> str:
        return (
            f"LUT {self.lut:,.0f} | FF {self.ff:,.0f} | "
            f"BRAM36 {self.bram36:,.1f} | DSP {self.dsp:,.0f}"
        )


def mac_luts(pe: int, simd: int, weight_bits: int, input_bits: int, acc_bits: int) -> float:
    """LUTs of the PE x SIMD MAC array plus its adder tree.

    Multipliers: ``weight_bits * input_bits`` partial-product terms per
    lane at :data:`LUT_PER_MULT_BIT_PRODUCT` LUTs each.  Adder tree: one
    ``acc_bits``-wide adder per SIMD lane merge plus the accumulator.
    """
    mult = pe * simd * (weight_bits * input_bits * LUT_PER_MULT_BIT_PRODUCT + LUT_PER_MAC_FIXED)
    adders = pe * max(simd - 1, 1) * acc_bits * LUT_PER_ADDER_BIT
    accumulator = pe * acc_bits * LUT_PER_ADDER_BIT
    return mult + adders + accumulator


def weight_storage(total_bits: float) -> tuple[float, float]:
    """Map a weight memory to (LUTRAM LUTs, BRAM36 blocks).

    Small memories use distributed LUTRAM; larger ones move to BRAM
    (FINN's ``ram_style=auto``).
    """
    if total_bits <= LUTRAM_THRESHOLD_BITS:
        return total_bits / LUTRAM_BITS_PER_LUT, 0.0
    bram18 = total_bits / BRAM18_EFFECTIVE_BITS
    return 0.0, bram18 / 2.0


def threshold_luts(pe: int, steps: int, acc_bits: int) -> float:
    """Comparator bank of a MultiThreshold stage.

    Each PE lane compares the accumulator against ``steps`` programmable
    thresholds in parallel: ``steps`` comparators of ``acc_bits`` width.
    """
    return pe * steps * acc_bits * LUT_PER_ADDER_BIT


def uses_dsp(weight_bits: int, input_bits: int) -> bool:
    """Whether one MAC lane maps to a DSP48 instead of LUTs."""
    return (weight_bits + input_bits) >= DSP_OPERAND_WIDTH_THRESHOLD


def wrapper_resources() -> ResourceEstimate:
    """Fixed cost of the AXI IP wrapper around the dataflow core."""
    return ResourceEstimate(lut=WRAPPER_LUT, ff=WRAPPER_FF, bram36=WRAPPER_BRAM36, dsp=0)
