"""Streamlining: turn the frontend graph into integer-only hardware form.

Reproduces FINN's streamlining transformations for MLP topologies:

* **AbsorbScaleBiasIntoThresholds** — collapse every
  ``MatMulInt -> ScaleBias -> QuantAct`` triple into
  ``MatMulInt -> MultiThreshold`` using the exact integer threshold
  conversion of :mod:`repro.finn.thresholds`.  After this pass the only
  float arithmetic left is the final logit de-quantisation.
* **PadMatMulInputs** — zero-pad matmul input widths to a SIMD-friendly
  multiple (FINN requires SIMD to divide the input width; zero columns
  never change accumulators).

Passes are pure functions producing a new graph; the originals are not
mutated.  ``streamline`` composes them in the standard order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompileError
from repro.finn.graph import (
    ArgMaxNode,
    DataflowGraph,
    MatMulIntNode,
    MultiThresholdNode,
    PadNode,
    QuantActNode,
    ScaleBiasNode,
)
from repro.finn.thresholds import compute_thresholds

__all__ = ["absorb_scale_bias_into_thresholds", "pad_matmul_inputs", "streamline"]


def absorb_scale_bias_into_thresholds(graph: DataflowGraph) -> DataflowGraph:
    """Replace MatMul->ScaleBias->QuantAct triples with MatMul->MultiThreshold."""
    out = DataflowGraph(input_info=graph.input_info, name=graph.name)
    nodes = graph.nodes
    index = 0
    while index < len(nodes):
        node = nodes[index]
        is_triple = (
            isinstance(node, MatMulIntNode)
            and index + 2 < len(nodes)
            and isinstance(nodes[index + 1], ScaleBiasNode)
            and isinstance(nodes[index + 2], QuantActNode)
        )
        if is_triple:
            scale_bias: ScaleBiasNode = nodes[index + 1]
            act: QuantActNode = nodes[index + 2]
            thresholds = compute_thresholds(
                acc_scale=scale_bias.scale,
                bias=scale_bias.bias,
                act_scale=act.scale,
                act_bits=act.bits,
            )
            out.append(node)
            out.append(MultiThresholdNode(f"{node.name}_thresh", thresholds, act.bits))
            index += 3
        else:
            out.append(node)
            index += 1
    out.validate()
    return out


def pad_matmul_inputs(graph: DataflowGraph, multiple: int = 8) -> DataflowGraph:
    """Zero-pad matmul input widths up to a multiple of ``multiple``.

    Inserts a :class:`PadNode` and widens the weight matrix with zero
    columns wherever an input width is not divisible.  Padding with
    zeros leaves every accumulator unchanged, so functional semantics
    are untouched (the verifier checks anyway).
    """
    if multiple < 1:
        raise CompileError(f"pad multiple must be >= 1, got {multiple}")
    out = DataflowGraph(input_info=graph.input_info, name=graph.name)
    current_features = graph.input_info.features
    for node in graph.nodes:
        if isinstance(node, MatMulIntNode):
            in_features = node.in_features
            if in_features != current_features:
                raise CompileError(
                    f"{node.name}: expects {in_features} features, pipeline carries {current_features}"
                )
            remainder = in_features % multiple
            if remainder:
                padded = in_features + (multiple - remainder)
                out.append(PadNode(f"{node.name}_pad", padded))
                widened = np.zeros((node.out_features, padded), dtype=np.int64)
                widened[:, :in_features] = node.weight_int
                node = MatMulIntNode(node.name, widened, node.weight_scale, node.weight_bits)
            current_features = node.out_features
            out.append(node)
        else:
            out.append(node)
            if isinstance(node, MultiThresholdNode):
                current_features = node.channels
    out.validate()
    return out


def streamline(graph: DataflowGraph, pad_multiple: int = 8) -> DataflowGraph:
    """FINN streamlining pipeline: absorb quant params, pad widths.

    Returns a hardware-shaped graph: integer MatMul/MultiThreshold
    pairs, a final integer MatMul, one float ScaleBias for the logits
    and the optional ArgMax head.
    """
    streamlined = absorb_scale_bias_into_thresholds(graph)
    streamlined = pad_matmul_inputs(streamlined, multiple=pad_multiple)
    _check_hardware_shape(streamlined)
    return streamlined


def _check_hardware_shape(graph: DataflowGraph) -> None:
    """Validate the node pattern hardware mapping expects."""
    allowed = (MatMulIntNode, MultiThresholdNode, ScaleBiasNode, ArgMaxNode, PadNode)
    for node in graph.nodes:
        if not isinstance(node, allowed):
            raise CompileError(
                f"streamlined graph contains non-hardware node {type(node).__name__}"
            )
    scale_bias_nodes = graph.nodes_of_type(ScaleBiasNode)
    if len(scale_bias_nodes) != 1:
        raise CompileError(
            f"expected exactly one ScaleBias (logit de-quant), found {len(scale_bias_nodes)}"
        )
